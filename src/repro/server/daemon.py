"""The solver daemon: one warm process serving many short-lived clients.

One :class:`SolverDaemon` owns exactly one of each expensive resource —

* a thread-safe :class:`~repro.cache.store.SolveCache` (optionally
  disk-backed) that stays warm across requests and connections,
* a persistent :class:`~repro.utils.parallel.WorkerPool` whose processes
  outlive individual solves,
* a :class:`~repro.server.coalescer.SolveCoalescer` that single-flights
  identical in-air requests and micro-batches distinct ones,

and serves newline-delimited JSON (see :mod:`.protocol`) over a unix
socket.  Flushed batches are grouped by (solver, request) and pushed
through :func:`repro.solvers.service.solve_many` on an executor thread, so
the event loop keeps accepting and coalescing while solves run.

Shutdown is a graceful drain: on SIGTERM (or :meth:`SolverDaemon.
request_drain`) the listening socket closes, in-flight operations run to
completion and stream their results, idle connections are then closed, and
the process exits 0.

:class:`DaemonThread` hosts a daemon inside the current process (own
thread, own event loop) for tests and benchmarks that need a live server
without ``fork``/``exec``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

from ..cache.store import SolveCache
from ..core import kernels
from ..core.exceptions import ReproError
from ..solvers.base import SolveResult
from ..solvers.registry import get_solver
from ..solvers.service import solve_frontier_many, solve_many
from ..utils.parallel import WorkerPool
from .coalescer import PendingSolve, SolveCoalescer
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    SolveTaskSpec,
    decode_line,
    encode_line,
)

__all__ = ["DaemonConfig", "SolverDaemon", "DaemonThread", "run_daemon"]


@dataclass(frozen=True)
class DaemonConfig:
    """Everything a daemon needs to come up.

    ``window``/``max_batch`` parametrise the micro-batcher (see
    :class:`~repro.server.coalescer.SolveCoalescer`); ``workers`` and
    ``batch_size`` are the familiar :func:`~repro.solvers.service.solve_many`
    knobs, applied through the persistent pool.
    """

    socket_path: str | Path
    workers: int | None = None
    batch_size: int | None = None
    cache_maxsize: int = 4096
    cache_dir: str | Path | None = None
    window: float = 0.002
    max_batch: int = 128
    backend: str | None = None

    def __post_init__(self) -> None:
        if not str(self.socket_path):
            raise ValueError("socket_path must be a non-empty path")


class SolverDaemon:
    """The long-lived server; create, :meth:`start`, then :meth:`serve`."""

    def __init__(self, config: DaemonConfig) -> None:
        self.config = config
        self.cache = SolveCache(
            maxsize=config.cache_maxsize, directory=config.cache_dir
        )
        self.coalescer = SolveCoalescer(
            self._execute_batch, window=config.window, max_batch=config.max_batch
        )
        self._pool: WorkerPool | None = None
        # one solver thread: groups execute sequentially (the machine's
        # parallelism lives in the worker pool), and the event loop stays
        # free to accept, coalesce and stream while a batch computes
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_requested = asyncio.Event()
        self._ops: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        self.draining = False
        self.started_at: float | None = None
        # request accounting (event-loop only: no locks needed)
        self.n_connections = 0
        self.n_requests = 0
        self.n_tasks = 0
        self.n_solved = 0
        self.n_cache_hits = 0
        self.n_errors = 0
        # frontier accounting: distinct-threshold groups answered through
        # solve_frontier_many, the threshold queries they covered, and a
        # {thresholds-per-group: count} histogram (the amortisation shape)
        self.n_frontier_groups = 0
        self.n_frontier_thresholds = 0
        self.frontier_group_sizes: Counter[int] = Counter()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the socket, start the coalescer, warm the pool."""
        if self.config.backend is not None:
            kernels.set_active_backend(self.config.backend)
        self._loop = asyncio.get_running_loop()
        self._pool = WorkerPool(self.config.workers)
        self.coalescer.start()
        path = Path(self.config.socket_path)
        if path.exists():  # stale socket from a crashed predecessor
            path.unlink()
        path.parent.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(path), limit=MAX_LINE_BYTES
        )
        self.started_at = time.monotonic()

    def request_drain(self) -> None:
        """Ask the daemon to drain and stop (signal-handler safe)."""
        self._stop_requested.set()

    async def serve(self) -> None:
        """Serve until a drain is requested, then drain; returns when done."""
        if self._server is None:
            await self.start()
        await self._stop_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, refuse new connections."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # flush pending batches immediately; stop honouring the window
        self.coalescer.hurry()
        # in-flight operations (including ones still arriving on already-
        # open connections) run to completion and stream their results
        while self._ops:
            await asyncio.gather(*tuple(self._ops), return_exceptions=True)
        # now quiescent: close remaining (idle) connections so their
        # read loops see EOF and exit
        for writer in tuple(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        await self.coalescer.stop()
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close()
        with contextlib.suppress(OSError):
            Path(self.config.socket_path).unlink()

    # ------------------------------------------------------------------ #
    # connections and operations
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.n_connections += 1
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        try:
            await self._write(
                writer,
                write_lock,
                {
                    "kind": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "server": "repro-daemon",
                    "pid": os.getpid(),
                },
            )
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded MAX_LINE_BYTES: unrecoverable framing
                    await self._write(
                        writer,
                        write_lock,
                        {
                            "kind": "error",
                            "id": None,
                            "error": f"line exceeds {MAX_LINE_BYTES} bytes",
                        },
                    )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    document = decode_line(line)
                except ProtocolError as exc:
                    self.n_errors += 1
                    await self._write(
                        writer,
                        write_lock,
                        {"kind": "error", "id": None, "error": str(exc)},
                    )
                    continue
                op_task = asyncio.get_running_loop().create_task(
                    self._handle_op(document, writer, write_lock)
                )
                self._ops.add(op_task)
                op_task.add_done_callback(self._ops.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        document: dict[str, Any],
    ) -> None:
        """Serialise one response line (operations share the connection)."""
        async with lock:
            writer.write(encode_line(document))
            await writer.drain()

    async def _handle_op(
        self,
        document: dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        request_id = document.get("id")
        op = document.get("op")
        self.n_requests += 1
        try:
            if op == "ping":
                await self._write(
                    writer, lock, {"kind": "pong", "id": request_id}
                )
            elif op == "stats":
                await self._write(
                    writer,
                    lock,
                    {"kind": "stats", "id": request_id, "stats": self.stats()},
                )
            elif op == "solve":
                await self._op_solve(document, writer, lock, request_id)
            elif op == "batch":
                await self._op_batch(document, writer, lock, request_id)
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except ConnectionError:
            pass  # client went away mid-stream; nothing left to tell it
        except Exception as exc:  # noqa: BLE001 - a request must ALWAYS get
            # an answer: an uncaught per-op exception would leave the client
            # blocked on a line that never comes
            self.n_errors += 1
            with contextlib.suppress(ConnectionError):
                await self._write(
                    writer,
                    lock,
                    {"kind": "error", "id": request_id, "error": str(exc)},
                )

    async def _op_solve(
        self,
        document: dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        request_id: Any,
    ) -> None:
        spec = SolveTaskSpec.from_dict(document.get("task"))
        self.n_tasks += 1
        result, disposition = await self._submit(spec)
        await self._write(
            writer,
            lock,
            {
                "kind": "result",
                "id": request_id,
                "index": 0,
                "disposition": disposition,
                "result": _result_document(result),
            },
        )

    async def _op_batch(
        self,
        document: dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        request_id: Any,
    ) -> None:
        raw_tasks = document.get("tasks")
        if not isinstance(raw_tasks, list) or not raw_tasks:
            raise ProtocolError("batch op needs a non-empty 'tasks' list")
        specs = [SolveTaskSpec.from_dict(raw) for raw in raw_tasks]
        self.n_tasks += len(specs)

        dispositions: dict[str, int] = {"solved": 0, "cache": 0, "coalesced": 0}
        n_errors = 0

        async def _one(index: int, spec: SolveTaskSpec) -> None:
            nonlocal n_errors
            try:
                result, disposition = await self._submit(spec)
            except (ReproError, ValueError) as exc:
                n_errors += 1
                self.n_errors += 1
                await self._write(
                    writer,
                    lock,
                    {
                        "kind": "error",
                        "id": request_id,
                        "index": index,
                        "error": str(exc),
                    },
                )
                return
            dispositions[disposition] += 1
            await self._write(
                writer,
                lock,
                {
                    "kind": "result",
                    "id": request_id,
                    "index": index,
                    "disposition": disposition,
                    "result": _result_document(result),
                },
            )

        # results stream back as they complete, each tagged with its index
        await asyncio.gather(
            *(_one(index, spec) for index, spec in enumerate(specs))
        )
        await self._write(
            writer,
            lock,
            {
                "kind": "done",
                "id": request_id,
                "n_tasks": len(specs),
                "n_errors": n_errors,
                "dispositions": dispositions,
            },
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    async def _submit(self, spec: SolveTaskSpec) -> tuple[SolveResult, str]:
        """Run one task through the coalescer; returns (result, disposition)."""
        try:
            handle = get_solver(spec.solver)
        except KeyError as exc:  # registry lookup, not a wire problem per se
            raise ProtocolError(str(exc.args[0]))
        request = handle.default_request(
            period_bound=spec.period_bound,
            latency_bound=spec.latency_bound,
            max_steps=spec.max_steps,
            time_budget=spec.time_budget,
        )
        result, coalesced = await self.coalescer.submit(
            handle, spec.application, spec.platform, request
        )
        if coalesced:
            return result, "coalesced"
        return result, "cache" if result.cache_hit else "solved"

    async def _execute_batch(self, batch: list[PendingSolve]) -> None:
        """Coalescer callback: run one flushed batch through solve_many.

        Tasks are grouped by (solver, request) — one bounds-set per
        :func:`solve_many` call — and each group runs on the executor
        thread so the loop stays responsive; all grouped instances share
        one dedupe/cache probe/shard pass and the persistent pool.
        """
        loop = asyncio.get_running_loop()
        groups: dict[tuple[str, Any], list[PendingSolve]] = {}
        for task in batch:
            groups.setdefault(task.group_key, []).append(task)
        for tasks in groups.values():
            # several distinct requests in one group can only come from the
            # frontier-aware group key (the legacy key pins the full
            # request), so the threshold spread routes through one frontier
            # solve per instance; a single-request group takes the legacy
            # path even on a frontier-capable solver
            n_requests = len({task.request for task in tasks})
            use_frontier = n_requests > 1
            body = self._solve_frontier_group if use_frontier else self._solve_group
            try:
                results, stats = await loop.run_in_executor(
                    self._executor, partial(body, tasks)
                )
            except Exception as exc:  # noqa: BLE001 - fan the failure out
                for task in tasks:
                    if not task.future.done():
                        task.future.set_exception(exc)
                continue
            self.n_solved += stats.n_solved
            self.n_cache_hits += stats.n_cache_hits
            if use_frontier:
                self.n_frontier_groups += 1
                self.n_frontier_thresholds += n_requests
                self.frontier_group_sizes[n_requests] += 1
            for task, result in zip(tasks, results):
                if not task.future.done():
                    task.future.set_result(result)

    def _solve_group(self, tasks: list[PendingSolve]):
        """Executor-thread body: one solve_many call for one group."""
        request = tasks[0].request
        outcome = solve_many(
            [(task.application, task.platform) for task in tasks],
            [tasks[0].handle],
            period_bound=request.period_bound,
            latency_bound=request.latency_bound,
            max_steps=getattr(request, "max_steps", None),
            time_budget=getattr(request, "time_budget", None),
            workers=self.config.workers,
            batch_size=self.config.batch_size,
            cache=self.cache,
            pool=self._pool,
        )
        return [row[0] for row in outcome.results], outcome.stats

    def _solve_frontier_group(self, tasks: list[PendingSolve]):
        """Executor-thread body: one frontier-routed group (many thresholds)."""
        return solve_frontier_many(
            [
                (
                    (task.application, task.platform),
                    float(task.request.threshold),
                )
                for task in tasks
            ],
            tasks[0].handle,
            workers=self.config.workers,
            batch_size=self.config.batch_size,
            cache=self.cache,
            pool=self._pool,
        )

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload: one JSON-safe snapshot of the daemon."""
        uptime = (
            time.monotonic() - self.started_at
            if self.started_at is not None
            else 0.0
        )
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": uptime,
            "draining": self.draining,
            "backend": kernels.active_backend(),
            "workers": self._pool.workers if self._pool is not None else 0,
            "connections": len(self._connections),
            "requests": {
                "n_connections": self.n_connections,
                "n_requests": self.n_requests,
                "n_tasks": self.n_tasks,
                "n_solved": self.n_solved,
                "n_cache_hits": self.n_cache_hits,
                "n_errors": self.n_errors,
            },
            "coalescer": self.coalescer.stats(),
            "frontier": {
                "n_groups": self.n_frontier_groups,
                "n_thresholds": self.n_frontier_thresholds,
                "group_sizes": {
                    str(size): count
                    for size, count in sorted(self.frontier_group_sizes.items())
                },
            },
            "cache": self.cache.stats_snapshot(),
            "cache_entries": len(self.cache),
        }


def _result_document(result: SolveResult) -> dict[str, Any]:
    """The wire form of a result, stripped of run provenance.

    ``wall_time``/``cache_hit``/``backend`` describe *how* this process
    obtained the result, not the result itself; dropping them keeps the
    response byte-identical across cold/warm/coalesced paths (the smoke
    test ``cmp``s two passes) and matches
    :meth:`SolveResult.identity`.
    """
    from ..core.serialization import solve_result_to_dict

    document = solve_result_to_dict(result)
    for field in SolveResult.NONDETERMINISTIC_FIELDS:
        document.pop(field, None)
    return document


def run_daemon(config: DaemonConfig) -> int:
    """Run a daemon in the current process until SIGTERM/SIGINT; returns 0.

    The signal triggers a graceful drain — in-flight solves complete and
    stream to their clients, new connections are refused — and the call
    returns 0 so service managers record a clean exit.
    """

    async def _main() -> None:
        daemon = SolverDaemon(config)
        await daemon.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, daemon.request_drain)
        await daemon.serve()

    asyncio.run(_main())
    return 0


class DaemonThread:
    """A live daemon inside this process, on its own thread and event loop.

    The tests and the latency benchmark need a real server (socket,
    coalescer, executor — everything) without forking one; use as a
    context manager::

        with DaemonThread(DaemonConfig(socket_path=...)) as host:
            client = ServiceClient(host.socket_path)
            ...

    ``host.daemon`` is the live :class:`SolverDaemon` — handy for
    asserting on its counters after the fact (read them once the host has
    stopped, or accept benign races).
    """

    def __init__(self, config: DaemonConfig) -> None:
        self.config = config
        self.daemon = SolverDaemon(config)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    @property
    def socket_path(self) -> str:
        return str(self.config.socket_path)

    def start(self) -> "DaemonThread":
        if self._thread is not None:
            raise RuntimeError("DaemonThread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-daemon", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise RuntimeError("daemon failed to start") from self._failure
        if not self._ready.is_set():
            raise RuntimeError("daemon did not come up within 30s")
        return self

    def _run(self) -> None:
        async def _main() -> None:
            try:
                await self.daemon.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.daemon.serve()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # pragma: no cover - surfaced via stop()
            if self._failure is None:
                self._failure = exc

    def stop(self) -> None:
        """Drain the daemon and join its thread (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        if self._loop is not None:
            with contextlib.suppress(RuntimeError):  # loop may already be done
                self._loop.call_soon_threadsafe(self.daemon.request_drain)
        thread.join(timeout=60.0)
        if thread.is_alive():  # pragma: no cover - drain wedged
            raise RuntimeError("daemon thread did not stop within 60s")

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
