"""Random pipeline application generators (Section 5.1 of the paper).

The experiments draw stage computation amounts ``w`` and communication sizes
``delta`` uniformly from experiment-specific ranges (or use a fixed ``delta``
for the homogeneous-communication experiment E1).  These helpers expose the
generation primitives so that new experiment families can be assembled from
the same building blocks.
"""

from __future__ import annotations

import numpy as np

from ..core.application import PipelineApplication
from ..utils.rng import ensure_rng
from ..utils.validation import check_positive

__all__ = ["random_pipeline", "uniform_pipeline"]


def _draw(
    rng: np.random.Generator,
    size: int,
    value_range: tuple[float, float],
    integer: bool,
) -> np.ndarray:
    low, high = float(value_range[0]), float(value_range[1])
    if low > high:
        raise ValueError(f"invalid range ({low}, {high})")
    if integer:
        return rng.integers(int(round(low)), int(round(high)) + 1, size=size).astype(float)
    return rng.uniform(low, high, size=size)


def random_pipeline(
    n_stages: int,
    work_range: tuple[float, float],
    comm_range: tuple[float, float] | None = None,
    comm_fixed: float | None = None,
    integer_works: bool = False,
    integer_comms: bool = False,
    seed: int | np.random.Generator | None = None,
    name: str = "random-pipeline",
) -> PipelineApplication:
    """Generate a random pipeline application.

    Parameters
    ----------
    n_stages:
        Number of stages ``n``.
    work_range:
        Inclusive range from which each ``w_k`` is drawn.
    comm_range / comm_fixed:
        Either a range from which each ``delta_k`` (``k = 0 .. n``) is drawn,
        or a single fixed value (experiment E1 uses ``delta = 10``).  Exactly
        one of the two must be provided.
    integer_works / integer_comms:
        Draw integer values instead of uniform reals (the paper's ranges are
        integer bounds; both choices preserve the experiment's balance).
    seed:
        Seed or generator for reproducibility.
    """
    if n_stages <= 0:
        raise ValueError("n_stages must be positive")
    if (comm_range is None) == (comm_fixed is None):
        raise ValueError("provide exactly one of comm_range or comm_fixed")
    rng = ensure_rng(seed)
    works = _draw(rng, n_stages, work_range, integer_works)
    if comm_fixed is not None:
        check_positive(comm_fixed, "comm_fixed")
        comms = np.full(n_stages + 1, float(comm_fixed))
    else:
        comms = _draw(rng, n_stages + 1, comm_range, integer_comms)
    return PipelineApplication(works, comms, name=name)


def uniform_pipeline(
    n_stages: int, work: float = 10.0, comm: float = 10.0, name: str = "uniform-pipeline"
) -> PipelineApplication:
    """Deterministic pipeline with identical stages (useful in examples/tests)."""
    return PipelineApplication.homogeneous(n_stages, work=work, comm=comm, name=name)
