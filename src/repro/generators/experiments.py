"""Experiment families E1–E4 of Section 5.1, as declarative configurations.

All four experiments share the platform parameters (``b = 10``, processor
speeds drawn as integers in ``[1, 20]``) and differ in the application
parameter ranges:

* **E1** — balanced communication/computation, homogeneous communications:
  ``delta = 10`` fixed, ``w`` in ``[1, 20]``;
* **E2** — balanced, heterogeneous communications: ``delta`` in ``[1, 100]``,
  ``w`` in ``[1, 20]``;
* **E3** — large computations: ``delta`` in ``[1, 20]``, ``w`` in
  ``[10, 1000]``;
* **E4** — small computations: ``delta`` in ``[1, 20]``, ``w`` in
  ``[0.01, 10]``.

Each experimental point of the paper averages over 50 random
application/platform pairs; :func:`generate_instances` reproduces that
instance stream from a single seed, with independent sub-streams per instance
so that enlarging the instance count never perturbs existing instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Iterator, Sequence

import numpy as np

from ..core.application import PipelineApplication
from ..core.exceptions import ConfigurationError
from ..core.platform import Platform
from ..utils.parallel import parallel_map
from ..utils.rng import spawn_seed_sequences
from .applications import random_pipeline
from .platforms import random_comm_homogeneous_platform

__all__ = [
    "ExperimentConfig",
    "Instance",
    "EXPERIMENT_FAMILIES",
    "experiment_config",
    "generate_instances",
    "PAPER_STAGE_COUNTS",
    "PAPER_PROCESSOR_COUNTS",
]

#: stage counts used by the paper's experiments
PAPER_STAGE_COUNTS: tuple[int, ...] = (5, 10, 20, 40)
#: processor counts used by the paper's experiments
PAPER_PROCESSOR_COUNTS: tuple[int, ...] = (10, 100)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experimental point (family, n_stages, p)."""

    family: str
    description: str
    n_stages: int
    n_processors: int
    work_range: tuple[float, float]
    comm_range: tuple[float, float] | None = None
    comm_fixed: float | None = None
    speed_range: tuple[int, int] = (1, 20)
    bandwidth: float = 10.0
    n_instances: int = 50
    integer_works: bool = False
    integer_comms: bool = False

    def __post_init__(self) -> None:
        if self.n_stages <= 0 or self.n_processors <= 0:
            raise ConfigurationError("n_stages and n_processors must be positive")
        if self.n_instances <= 0:
            raise ConfigurationError("n_instances must be positive")
        if (self.comm_range is None) == (self.comm_fixed is None):
            raise ConfigurationError(
                "provide exactly one of comm_range or comm_fixed"
            )

    @property
    def label(self) -> str:
        return f"{self.family}-n{self.n_stages}-p{self.n_processors}"

    def with_sizes(
        self, n_stages: int | None = None, n_processors: int | None = None,
        n_instances: int | None = None,
    ) -> "ExperimentConfig":
        """Copy of the configuration with different problem sizes."""
        return replace(
            self,
            n_stages=self.n_stages if n_stages is None else n_stages,
            n_processors=self.n_processors if n_processors is None else n_processors,
            n_instances=self.n_instances if n_instances is None else n_instances,
        )


@dataclass(frozen=True)
class Instance:
    """One random application/platform pair of an experiment."""

    index: int
    application: PipelineApplication
    platform: Platform
    config: ExperimentConfig = field(repr=False)


#: the four experiment families, keyed by their paper name
EXPERIMENT_FAMILIES: dict[str, dict] = {
    "E1": dict(
        description="balanced communications/computations, homogeneous communications",
        work_range=(1.0, 20.0),
        comm_fixed=10.0,
    ),
    "E2": dict(
        description="balanced communications/computations, heterogeneous communications",
        work_range=(1.0, 20.0),
        comm_range=(1.0, 100.0),
    ),
    "E3": dict(
        description="large computations (communications negligible)",
        work_range=(10.0, 1000.0),
        comm_range=(1.0, 20.0),
    ),
    "E4": dict(
        description="small computations (communications dominate)",
        work_range=(0.01, 10.0),
        comm_range=(1.0, 20.0),
    ),
}


def experiment_config(
    family: str,
    n_stages: int,
    n_processors: int,
    n_instances: int = 50,
) -> ExperimentConfig:
    """Configuration of one experimental point of the paper.

    ``family`` is one of ``"E1" .. "E4"``; stage and processor counts are free
    (the paper uses ``n in {5, 10, 20, 40}`` and ``p in {10, 100}``).
    """
    key = family.upper()
    if key not in EXPERIMENT_FAMILIES:
        raise ConfigurationError(
            f"unknown experiment family {family!r}; expected one of "
            f"{sorted(EXPERIMENT_FAMILIES)}"
        )
    params = EXPERIMENT_FAMILIES[key]
    return ExperimentConfig(
        family=key,
        description=params["description"],
        n_stages=n_stages,
        n_processors=n_processors,
        work_range=params["work_range"],
        comm_range=params.get("comm_range"),
        comm_fixed=params.get("comm_fixed"),
        n_instances=n_instances,
    )


def _materialise_instance(
    config: ExperimentConfig, task: tuple[int, np.random.SeedSequence]
) -> Instance:
    """Build instance ``index`` from its pre-spawned seed sequence.

    Module-level (and driven by an explicit seed sequence) so that the
    parallel engine can ship it to worker processes: the instance depends
    only on ``(config, index, seed_seq)``, never on which worker runs it.
    """
    index, seed_seq = task
    rng = np.random.default_rng(seed_seq)
    app = random_pipeline(
        config.n_stages,
        work_range=config.work_range,
        comm_range=config.comm_range,
        comm_fixed=config.comm_fixed,
        integer_works=config.integer_works,
        integer_comms=config.integer_comms,
        seed=rng,
        name=f"{config.label}-app{index}",
    )
    platform = random_comm_homogeneous_platform(
        config.n_processors,
        speed_range=config.speed_range,
        bandwidth=config.bandwidth,
        seed=rng,
        name=f"{config.label}-platform{index}",
    )
    return Instance(index=index, application=app, platform=platform, config=config)


def generate_instances(
    config: ExperimentConfig,
    seed: int | np.random.Generator | None = 0,
    *,
    workers: int | None = None,
    batch_size: int | None = None,
) -> list[Instance]:
    """Generate the instance stream of one experimental point.

    Each instance gets an independent RNG sub-stream derived from ``seed``
    (all sub-streams are spawned up front in the parent process), so instance
    ``i`` is identical whether 10 or 1000 instances are requested — and, with
    ``workers > 1``, no matter how the stream is chunked across processes.
    """
    seed_seqs = spawn_seed_sequences(seed, config.n_instances)
    return parallel_map(
        partial(_materialise_instance, config),
        list(enumerate(seed_seqs)),
        workers=workers,
        batch_size=batch_size,
    )


def iter_paper_configs(
    families: Sequence[str] = ("E1", "E2", "E3", "E4"),
    stage_counts: Sequence[int] = PAPER_STAGE_COUNTS,
    processor_counts: Sequence[int] = PAPER_PROCESSOR_COUNTS,
    n_instances: int = 50,
) -> Iterator[ExperimentConfig]:
    """Iterate over every experimental point of the paper's evaluation."""
    for family in families:
        for p in processor_counts:
            for n in stage_counts:
                yield experiment_config(family, n, p, n_instances=n_instances)
