"""Random instance generators for the paper's experiments (Section 5.1)."""

from .applications import random_pipeline, uniform_pipeline
from .experiments import (
    EXPERIMENT_FAMILIES,
    PAPER_PROCESSOR_COUNTS,
    PAPER_STAGE_COUNTS,
    ExperimentConfig,
    Instance,
    experiment_config,
    generate_instances,
    iter_paper_configs,
)
from .platforms import (
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
)

__all__ = [
    "random_pipeline",
    "uniform_pipeline",
    "random_comm_homogeneous_platform",
    "random_fully_heterogeneous_platform",
    "ExperimentConfig",
    "Instance",
    "EXPERIMENT_FAMILIES",
    "PAPER_STAGE_COUNTS",
    "PAPER_PROCESSOR_COUNTS",
    "experiment_config",
    "generate_instances",
    "iter_paper_configs",
]
