"""Random platform generators (Section 5.1 of the paper).

The paper's experiments use communication-homogeneous platforms with link
bandwidth ``b = 10`` and processor speeds drawn as integers in ``[1, 20]``.
A fully heterogeneous generator is also provided for the extension modules.
"""

from __future__ import annotations

import numpy as np

from ..core.platform import Platform
from ..utils.rng import ensure_rng
from ..utils.validation import check_positive

__all__ = [
    "random_comm_homogeneous_platform",
    "random_fully_heterogeneous_platform",
]


def random_comm_homogeneous_platform(
    n_processors: int,
    speed_range: tuple[int, int] = (1, 20),
    bandwidth: float = 10.0,
    seed: int | np.random.Generator | None = None,
    name: str = "random-platform",
) -> Platform:
    """Random communication-homogeneous platform (the paper's target class).

    Speeds are integers drawn uniformly from ``speed_range`` (inclusive), the
    link bandwidth is the same for every processor pair.
    """
    if n_processors <= 0:
        raise ValueError("n_processors must be positive")
    check_positive(bandwidth, "bandwidth")
    low, high = int(speed_range[0]), int(speed_range[1])
    if low <= 0 or high < low:
        raise ValueError(f"invalid speed range {speed_range}")
    rng = ensure_rng(seed)
    speeds = rng.integers(low, high + 1, size=n_processors).astype(float)
    return Platform.communication_homogeneous(speeds, bandwidth=bandwidth, name=name)


def random_fully_heterogeneous_platform(
    n_processors: int,
    speed_range: tuple[int, int] = (1, 20),
    bandwidth_range: tuple[float, float] = (1.0, 20.0),
    seed: int | np.random.Generator | None = None,
    name: str = "random-heterogeneous-platform",
) -> Platform:
    """Random platform with heterogeneous links (Section 7 extension).

    Link bandwidths are drawn uniformly from ``bandwidth_range`` and
    symmetrised; the input/output bandwidths are drawn from the same range.
    """
    if n_processors <= 0:
        raise ValueError("n_processors must be positive")
    low, high = float(bandwidth_range[0]), float(bandwidth_range[1])
    if low <= 0 or high < low:
        raise ValueError(f"invalid bandwidth range {bandwidth_range}")
    rng = ensure_rng(seed)
    speeds = rng.integers(int(speed_range[0]), int(speed_range[1]) + 1, size=n_processors)
    raw = rng.uniform(low, high, size=(n_processors, n_processors))
    matrix = (raw + raw.T) / 2.0
    np.fill_diagonal(matrix, high)
    return Platform.fully_heterogeneous(
        speeds.astype(float),
        matrix,
        input_bandwidth=float(rng.uniform(low, high)),
        output_bandwidth=float(rng.uniform(low, high)),
        name=name,
    )
