# Developer entry points.  All targets run from the repository root and use
# the src layout directly (no install step needed).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench-smoke bench bench-cache bench-kernels bench-service bench-sweep cache-smoke fuzz-smoke fuzz-hetero-smoke workload-smoke shard-smoke serve-smoke sweep-smoke sweep-demo clean-results

## tier-1 verification: the full test suite, fail fast
test:
	$(PYTHON) -m pytest -x -q

## static checks (configuration in ruff.toml); CI runs this on every push
lint:
	ruff check src tests benchmarks examples setup.py

## fast benchmark pass: tiny sizes, one round each — asserts correctness of
## every figure/table driver and refreshes benchmarks/results/
bench-smoke:
	REPRO_BENCH_INSTANCES=4 REPRO_BENCH_THRESHOLDS=4 \
		$(PYTHON) -m pytest benchmarks -q -o python_files='bench_*.py' \
		--benchmark-disable
	$(PYTHON) benchmarks/bench_optimality_gap.py --smoke
	$(PYTHON) benchmarks/bench_kernel_speedup.py --smoke

## full benchmark suite (paper-scale sizing via REPRO_BENCH_* env knobs)
bench:
	$(PYTHON) -m pytest benchmarks -q -o python_files='bench_*.py'

## solve-cache throughput: warm-vs-cold solve_many on a repeated-instance
## workload (asserts >= 5x), refreshes benchmarks/results/cache_throughput.txt
bench-cache:
	$(PYTHON) -m pytest benchmarks/bench_cache_throughput.py -q \
		-o python_files='bench_*.py' --benchmark-disable

## compiled-kernel speedup gate: >= 5x on the DP tables vs numpy at paper
## scale, identical results, end-to-end sweep win; writes BENCH_kernels.json
bench-kernels:
	$(PYTHON) benchmarks/bench_kernel_speedup.py

## CI's cache smoke slice: run `cli batch` twice against one --cache-dir and
## assert the cold and warm stdout reports are byte-identical
cache-smoke:
	rm -rf .cache-smoke && mkdir -p .cache-smoke
	$(PYTHON) -m repro.cli batch --family E1 --stages 8 --processors 6 \
		--instances 10 --repeat 2 --period 12 --latency 60 \
		--cache-dir .cache-smoke/store > .cache-smoke/cold.txt
	$(PYTHON) -m repro.cli batch --family E1 --stages 8 --processors 6 \
		--instances 10 --repeat 2 --period 12 --latency 60 \
		--cache-dir .cache-smoke/store > .cache-smoke/warm.txt
	cmp .cache-smoke/cold.txt .cache-smoke/warm.txt
	rm -rf .cache-smoke

## fast differential-verification slice; CI's PR gate runs exactly this
## target (the nightly job runs the same command with --count 2000) and
## uploads anything written to fuzz-counterexamples/ as an artifact
fuzz-smoke:
	$(PYTHON) -m repro.cli fuzz --count 100 --seed 0 --corpus fuzz-counterexamples

## heterogeneous-only fuzz slice: glob family selection, exercises the
## anytime local-search invariants on every instance small enough for them
fuzz-hetero-smoke:
	$(PYTHON) -m repro.cli fuzz --families 'heterogeneous*' --count 200 \
		--seed 0 --corpus fuzz-counterexamples

## CI's resume smoke slice: run a spec, interrupt it halfway via the
## --max-tasks cap (exit 3), resume it with --resume, and assert the final
## report is byte-identical to an uninterrupted run
workload-smoke:
	rm -rf .workload-smoke && mkdir -p .workload-smoke
	$(PYTHON) -m repro.cli run examples/workload_smoke.json \
		--journal .workload-smoke/journal.jsonl --max-tasks 17 \
		> .workload-smoke/partial.txt; rc=$$?; test $$rc -eq 3
	$(PYTHON) -m repro.cli run examples/workload_smoke.json \
		--journal .workload-smoke/journal.jsonl --resume \
		--sink .workload-smoke/resumed.jsonl \
		> .workload-smoke/resumed.txt
	$(PYTHON) -m repro.cli run examples/workload_smoke.json \
		--sink .workload-smoke/fresh.jsonl \
		> .workload-smoke/fresh.txt
	cmp .workload-smoke/resumed.txt .workload-smoke/fresh.txt
	cmp .workload-smoke/resumed.jsonl .workload-smoke/fresh.jsonl
	rm -rf .workload-smoke

## CI's shard smoke slice: run a spec as 3 independent shards against one
## shared --cache-dir (each exits 3: shard done, run incomplete), fold the
## shard journals with merge-journals, replay the merged journal with
## --resume, and assert the final report is byte-identical to a whole run
shard-smoke:
	rm -rf .shard-smoke && mkdir -p .shard-smoke
	for i in 0 1 2; do \
		$(PYTHON) -m repro.cli run examples/workload_smoke.json \
			--journal .shard-smoke/shard$$i.jsonl --shard $$i/3 \
			--cache-dir .shard-smoke/cache \
			> .shard-smoke/shard$$i.txt; rc=$$?; \
		test $$rc -eq 3 || exit 1; \
	done
	$(PYTHON) -m repro.cli merge-journals .shard-smoke/shard0.jsonl \
		.shard-smoke/shard1.jsonl .shard-smoke/shard2.jsonl \
		--output .shard-smoke/merged.jsonl
	$(PYTHON) -m repro.cli run examples/workload_smoke.json \
		--journal .shard-smoke/merged.jsonl --resume \
		--sink .shard-smoke/merged.jsonl.rows.jsonl \
		> .shard-smoke/merged.txt
	$(PYTHON) -m repro.cli run examples/workload_smoke.json \
		--sink .shard-smoke/whole.jsonl.rows.jsonl \
		> .shard-smoke/whole.txt
	cmp .shard-smoke/merged.txt .shard-smoke/whole.txt
	cmp .shard-smoke/merged.jsonl.rows.jsonl .shard-smoke/whole.jsonl.rows.jsonl
	rm -rf .shard-smoke

## solver-daemon latency gate: warm daemon >= 5x over per-request CLI on a
## Zipf-repeated mix, byte-identical answers; writes BENCH_service.json
bench-service:
	$(PYTHON) benchmarks/bench_service_latency.py

## frontier-sweep amortisation gate: one frontier solve per (instance,
## solver) answers a 10-threshold sweep >= 5x faster than per-threshold
## solving, identical curves; writes BENCH_sweep.json
bench-sweep:
	$(PYTHON) benchmarks/bench_sweep_frontier.py

## CI's solver-daemon smoke slice: start `serve` in the background, run the
## same batch twice through `batch --server`, assert the two stdout reports
## are byte-identical and the second pass hit the daemon's warm cache, then
## SIGTERM the daemon and require a clean (drained) exit 0
serve-smoke:
	rm -rf .serve-smoke && mkdir -p .serve-smoke
	set -e; \
	$(PYTHON) -m repro.cli serve --socket .serve-smoke/daemon.sock \
		2> .serve-smoke/serve.log & SRV=$$!; \
	trap 'kill $$SRV 2>/dev/null || true' EXIT; \
	$(PYTHON) -m repro.cli client ping --socket .serve-smoke/daemon.sock \
		--wait 30 > /dev/null; \
	$(PYTHON) -m repro.cli batch --family E1 --stages 8 --processors 6 \
		--instances 10 --repeat 2 --period 12 --latency 60 \
		--server .serve-smoke/daemon.sock > .serve-smoke/cold.txt; \
	$(PYTHON) -m repro.cli batch --family E1 --stages 8 --processors 6 \
		--instances 10 --repeat 2 --period 12 --latency 60 \
		--server .serve-smoke/daemon.sock > .serve-smoke/warm.txt; \
	cmp .serve-smoke/cold.txt .serve-smoke/warm.txt; \
	$(PYTHON) -m repro.cli client stats --socket .serve-smoke/daemon.sock \
		| $(PYTHON) -c "import json,sys; s=json.load(sys.stdin); \
			assert s['cache']['hit_rate'] > 0, s['cache']; \
			print('daemon cache hit rate:', s['cache']['hit_rate'])"; \
	kill -TERM $$SRV; rc=0; wait $$SRV || rc=$$?; trap - EXIT; \
	test $$rc -eq 0 || { echo "daemon exited $$rc (want 0)"; cat .serve-smoke/serve.log; exit 1; }
	rm -rf .serve-smoke

## CI's frontier smoke slice: run one sweep per-threshold (--no-frontier)
## and frontier-routed (--frontier) and assert the two stdout reports are
## byte-identical — the frontier layer may only change the wall clock
sweep-smoke:
	rm -rf .sweep-smoke && mkdir -p .sweep-smoke
	$(PYTHON) -m repro.cli sweep --family E1 --stages 12 --processors 6 \
		--instances 4 --thresholds 6 --no-frontier > .sweep-smoke/direct.txt
	$(PYTHON) -m repro.cli sweep --family E1 --stages 12 --processors 6 \
		--instances 4 --thresholds 6 --frontier > .sweep-smoke/frontier.txt
	cmp .sweep-smoke/direct.txt .sweep-smoke/frontier.txt
	rm -rf .sweep-smoke

## one parallel figure panel end to end (smoke test of the --workers path)
sweep-demo:
	$(PYTHON) -m repro.cli sweep --family E1 --stages 10 --processors 10 \
		--instances 5 --thresholds 5 --workers -1

clean-results:
	rm -rf benchmarks/results
