"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
legacy (non-PEP-517) editable installs — ``pip install -e . --no-use-pep517``
— keep working in offline environments where the ``wheel`` package is not
available for the modern editable-install path.
"""

from setuptools import setup

setup()
