"""Setuptools shim.

Kept so that legacy (non-PEP-517) editable installs — ``pip install -e .
--no-use-pep517`` — keep working in offline environments where the ``wheel``
package is not available for the modern editable-install path.

The package version is single-sourced from ``src/repro/__init__.py``
(``repro.__version__``, also surfaced by ``repro-pipeline --version``); it
is read here textually so building never imports the package (or its
runtime dependencies).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _version() -> str:
    """Read ``__version__`` out of ``src/repro/__init__.py`` without importing."""
    text = (
        Path(__file__).resolve().parent / "src" / "repro" / "__init__.py"
    ).read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-pipeline",
    version=_version(),
    description=(
        "Reproduction of Benoit, Rehn-Sonigo & Robert (2007): bi-criteria "
        "mapping of pipeline workflows"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["repro-pipeline = repro.cli:main"],
    },
)
