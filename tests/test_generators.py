"""Tests of the random instance generators (Section 5.1 parameters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.platform import PlatformClass
from repro.generators.applications import random_pipeline, uniform_pipeline
from repro.generators.experiments import (
    EXPERIMENT_FAMILIES,
    ExperimentConfig,
    experiment_config,
    generate_instances,
    iter_paper_configs,
)
from repro.generators.platforms import (
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
)


class TestApplicationGenerator:
    def test_dimensions_and_ranges(self):
        app = random_pipeline(12, work_range=(1, 20), comm_range=(1, 100), seed=0)
        assert app.n_stages == 12
        assert len(app.comm_sizes) == 13
        assert np.all(app.works >= 1) and np.all(app.works <= 20)
        assert np.all(app.comm_sizes >= 1) and np.all(app.comm_sizes <= 100)

    def test_fixed_communications(self):
        app = random_pipeline(5, work_range=(1, 20), comm_fixed=10.0, seed=1)
        assert np.all(app.comm_sizes == 10.0)

    def test_integer_draws(self):
        app = random_pipeline(
            50, work_range=(1, 20), comm_range=(1, 100),
            integer_works=True, integer_comms=True, seed=2,
        )
        assert np.all(app.works == np.round(app.works))
        assert np.all(app.comm_sizes == np.round(app.comm_sizes))

    def test_reproducibility(self):
        a = random_pipeline(8, work_range=(1, 20), comm_range=(1, 100), seed=7)
        b = random_pipeline(8, work_range=(1, 20), comm_range=(1, 100), seed=7)
        assert a == b

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            random_pipeline(0, work_range=(1, 2), comm_fixed=1.0)
        with pytest.raises(ValueError):
            random_pipeline(3, work_range=(1, 2))
        with pytest.raises(ValueError):
            random_pipeline(3, work_range=(1, 2), comm_range=(1, 2), comm_fixed=3.0)
        with pytest.raises(ValueError):
            random_pipeline(3, work_range=(5, 1), comm_fixed=1.0)

    def test_uniform_pipeline(self):
        app = uniform_pipeline(4, work=2.0, comm=3.0)
        assert np.all(app.works == 2.0) and np.all(app.comm_sizes == 3.0)


class TestPlatformGenerator:
    def test_comm_homogeneous_properties(self):
        platform = random_comm_homogeneous_platform(20, seed=0)
        assert platform.n_processors == 20
        assert platform.platform_class in (
            PlatformClass.COMMUNICATION_HOMOGENEOUS,
            PlatformClass.FULLY_HOMOGENEOUS,
        )
        assert platform.uniform_bandwidth == 10.0
        assert np.all(platform.speeds >= 1) and np.all(platform.speeds <= 20)
        assert np.all(platform.speeds == np.round(platform.speeds))

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            random_comm_homogeneous_platform(0)
        with pytest.raises(ValueError):
            random_comm_homogeneous_platform(3, speed_range=(5, 1))
        with pytest.raises(ValueError):
            random_comm_homogeneous_platform(3, bandwidth=0.0)

    def test_fully_heterogeneous_platform(self):
        platform = random_fully_heterogeneous_platform(6, seed=3)
        assert platform.n_processors == 6
        mat = platform.bandwidth_matrix()
        assert np.allclose(mat, mat.T)

    def test_heterogeneous_argument_validation(self):
        with pytest.raises(ValueError):
            random_fully_heterogeneous_platform(0)
        with pytest.raises(ValueError):
            random_fully_heterogeneous_platform(3, bandwidth_range=(5, 1))


class TestExperimentConfig:
    def test_all_four_families_exist(self):
        assert set(EXPERIMENT_FAMILIES) == {"E1", "E2", "E3", "E4"}

    def test_family_parameters_match_paper(self):
        e1 = experiment_config("E1", 10, 10)
        assert e1.comm_fixed == 10.0 and e1.work_range == (1.0, 20.0)
        e2 = experiment_config("E2", 10, 10)
        assert e2.comm_range == (1.0, 100.0)
        e3 = experiment_config("E3", 10, 10)
        assert e3.work_range == (10.0, 1000.0) and e3.comm_range == (1.0, 20.0)
        e4 = experiment_config("E4", 10, 10)
        assert e4.work_range == (0.01, 10.0)
        for cfg in (e1, e2, e3, e4):
            assert cfg.bandwidth == 10.0
            assert cfg.speed_range == (1, 20)
            assert cfg.n_instances == 50

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            experiment_config("E9", 10, 10)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            experiment_config("E1", 0, 10)
        with pytest.raises(ConfigurationError):
            experiment_config("E1", 10, 10, n_instances=0)

    def test_with_sizes_copy(self):
        cfg = experiment_config("E1", 10, 10).with_sizes(n_stages=20, n_instances=5)
        assert cfg.n_stages == 20 and cfg.n_instances == 5 and cfg.n_processors == 10

    def test_config_requires_exactly_one_comm_spec(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                family="X",
                description="bad",
                n_stages=5,
                n_processors=5,
                work_range=(1, 2),
            )

    def test_iter_paper_configs_covers_grid(self):
        configs = list(iter_paper_configs())
        assert len(configs) == 4 * 2 * 4  # families x processor counts x stage counts
        labels = {c.label for c in configs}
        assert "E3-n20-p100" in labels


class TestInstanceGeneration:
    def test_counts_and_determinism(self):
        cfg = experiment_config("E2", 10, 10, n_instances=5)
        first = generate_instances(cfg, seed=3)
        second = generate_instances(cfg, seed=3)
        assert len(first) == 5
        for a, b in zip(first, second):
            assert a.application == b.application
            assert np.array_equal(a.platform.speeds, b.platform.speeds)

    def test_prefix_stability_when_extending(self):
        cfg_small = experiment_config("E2", 10, 10, n_instances=3)
        cfg_large = experiment_config("E2", 10, 10, n_instances=6)
        small = generate_instances(cfg_small, seed=5)
        large = generate_instances(cfg_large, seed=5)
        for a, b in zip(small, large[:3]):
            assert a.application == b.application

    def test_instances_match_config(self):
        cfg = experiment_config("E3", 20, 100, n_instances=4)
        for inst in generate_instances(cfg, seed=0):
            assert inst.application.n_stages == 20
            assert inst.platform.n_processors == 100
            assert inst.config is cfg

    def test_different_seeds_differ(self):
        cfg = experiment_config("E1", 10, 10, n_instances=2)
        a = generate_instances(cfg, seed=1)[0]
        b = generate_instances(cfg, seed=2)[0]
        assert a.application != b.application

    def test_e3_is_computation_dominated_and_e4_communication_dominated(self):
        e3 = generate_instances(experiment_config("E3", 20, 10, n_instances=10), seed=0)
        e4 = generate_instances(experiment_config("E4", 20, 10, n_instances=10), seed=0)
        mean_ratio_e3 = np.mean([i.application.comm_to_work_ratio for i in e3])
        mean_ratio_e4 = np.mean([i.application.comm_to_work_ratio for i in e4])
        assert mean_ratio_e3 < 0.2
        assert mean_ratio_e4 > 1.0
