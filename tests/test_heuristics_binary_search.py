"""Tests of H4 Sp-bi-P (bi-criteria splitting with binary search on the latency)."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate, optimal_latency
from repro.heuristics import SplittingBiPeriod, SplittingMonoPeriod
from tests.conftest import random_instance


class TestBasics:
    def test_result_metrics_match_mapping(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        result = SplittingBiPeriod().run(app, platform, period_bound=5.0)
        ev = evaluate(app, platform, result.mapping)
        assert result.period == pytest.approx(ev.period)
        assert result.latency == pytest.approx(ev.latency)

    def test_feasibility_matches_unconstrained_pass(self, medium_instance):
        """Sp bi P is feasible exactly when its unconstrained pass reaches the
        period (the binary search can only restrict the latency further)."""
        app, platform = medium_instance.application, medium_instance.platform
        h = SplittingBiPeriod()
        probe = h.run(app, platform, period_bound=1e-9)
        reachable = probe.period
        assert h.run(app, platform, period_bound=reachable * 1.001).feasible
        assert not h.run(app, platform, period_bound=reachable * 0.9).feasible

    def test_infeasible_run_returns_valid_mapping(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        result = SplittingBiPeriod().run(app, platform, period_bound=1e-9)
        assert not result.feasible
        result.mapping.validate(app, platform)


class TestLatencyMinimisation:
    def test_latency_not_worse_than_unconstrained_pass(self):
        """The binary search keeps the best (smallest-latency) feasible pass, so
        it can never end up above the unconstrained pass's latency."""
        for seed in range(5):
            app, platform = random_instance(15, 10, seed=seed)
            h = SplittingBiPeriod()
            reachable = h.run(app, platform, period_bound=1e-9).period
            bound = reachable * 1.3
            constrained = h.run(app, platform, period_bound=bound)
            assert constrained.feasible
            # re-run the unconstrained pass manually through a huge authorised latency
            state, _, _ = h._splitting_pass(app, platform, bound, None)
            assert constrained.latency <= state.latency + 1e-9

    def test_latency_at_least_lemma1(self):
        for seed in range(5):
            app, platform = random_instance(12, 8, seed=seed)
            result = SplittingBiPeriod().run(app, platform, period_bound=3.0)
            assert result.latency >= optimal_latency(app, platform) - 1e-9

    def test_loose_bound_keeps_lemma1_mapping(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        result = SplittingBiPeriod().run(app, platform, period_bound=1e9)
        assert result.feasible
        assert result.n_splits == 0
        assert result.latency == pytest.approx(optimal_latency(app, platform))


class TestAgainstMonoCriterion:
    def test_latency_usually_not_worse_than_h1_at_same_threshold(self):
        """Sp bi P trades period slack for latency: when both heuristics are
        feasible at a threshold, Sp bi P's latency should not be (much) worse
        than Sp mono P's on average (paper: it achieves the best latencies)."""
        better_or_equal = 0
        total = 0
        for seed in range(10):
            app, platform = random_instance(10, 10, seed=seed, family="E1")
            h1 = SplittingMonoPeriod()
            h4 = SplittingBiPeriod()
            reachable = h1.run(app, platform, period_bound=1e-9).period
            bound = reachable * 1.5
            r1 = h1.run(app, platform, period_bound=bound)
            r4 = h4.run(app, platform, period_bound=bound)
            if r1.feasible and r4.feasible:
                total += 1
                if r4.latency <= r1.latency + 1e-9:
                    better_or_equal += 1
        assert total > 0
        assert better_or_equal >= total * 0.6
