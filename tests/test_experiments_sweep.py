"""Tests of the figure-sweep driver."""

from __future__ import annotations

import pytest

import numpy as np

from repro.experiments.report import render_sweep
from repro.experiments.sweep import _threshold_grid, run_sweep, sweep_results_equal
from repro.generators.experiments import experiment_config, generate_instances
from repro.heuristics import heuristic_names


@pytest.fixture(scope="module")
def small_sweep():
    cfg = experiment_config("E1", 8, 6, n_instances=5)
    return run_sweep(cfg, n_thresholds=5, seed=1)


class TestSweepStructure:
    def test_all_heuristics_present(self, small_sweep):
        assert set(small_sweep.curves) == set(heuristic_names())

    def test_threshold_grids(self, small_sweep):
        assert len(small_sweep.period_thresholds) == 5
        assert len(small_sweep.latency_thresholds) == 5
        assert small_sweep.period_thresholds == sorted(small_sweep.period_thresholds)
        assert small_sweep.latency_thresholds == sorted(small_sweep.latency_thresholds)

    def test_points_counts(self, small_sweep):
        for curve in small_sweep.curves.values():
            assert len(curve.points) == 5
            for point in curve.points:
                assert point.n_instances == 5
                assert 0 <= point.n_feasible <= 5

    def test_feasibility_increases_with_threshold(self, small_sweep):
        for curve in small_sweep.curves.values():
            feasible_counts = [p.n_feasible for p in curve.points]
            assert all(
                b >= a for a, b in zip(feasible_counts, feasible_counts[1:])
            ), f"feasibility not monotone for {curve.heuristic}"

    def test_series_only_contains_feasible_points(self, small_sweep):
        for curve in small_sweep.curves.values():
            assert len(curve.as_series()) == sum(
                1 for p in curve.points if p.n_feasible > 0
            )


class TestThresholdGrid:
    def test_regular_grid_is_untouched(self):
        assert _threshold_grid(1.0, 2.0, 5) == [1.0, 1.25, 1.5, 1.75, 2.0]

    def test_colliding_grid_points_are_deduped(self):
        """Steps below float resolution collapse; order is preserved.

        ``linspace(1.0, nextafter(1.0), 7)`` emits only two distinct floats
        (seven requested); a workload plan built from the raw grid would
        carry duplicate (solver, threshold) cells — and crash the engine's
        duplicate-digest check.
        """
        hi = float(np.nextafter(1.0, 2.0))
        grid = _threshold_grid(1.0, hi, 7)
        assert grid == [1.0, hi]
        assert len(grid) == len(set(grid))
        assert grid == sorted(grid)

    def test_degenerate_range_is_widened_before_gridding(self):
        grid = _threshold_grid(0.0, 0.0, 5)
        assert len(grid) == 5
        assert len(grid) == len(set(grid))

    def test_sweep_survives_degenerate_threshold_range(self):
        """End to end: a single-point range must not produce duplicate cells."""
        cfg = experiment_config("E1", 6, 4, n_instances=2)
        instances = generate_instances(cfg, seed=2)
        result = run_sweep(
            cfg, heuristics=["H1"], n_thresholds=6, instances=instances
        )
        thresholds = [p.threshold for p in result.curves["Sp mono P"].points]
        assert len(thresholds) == len(set(thresholds))


class TestFrontierRouting:
    def test_frontier_sweep_equals_per_threshold_sweep(self):
        cfg = experiment_config("E1", 10, 6, n_instances=3)
        instances = generate_instances(cfg, seed=4)
        direct = run_sweep(
            cfg, n_thresholds=5, instances=instances, frontier=False
        )
        routed = run_sweep(
            cfg, n_thresholds=5, instances=instances, frontier=True
        )
        assert sweep_results_equal(direct, routed)


class TestSweepSemantics:
    def test_fixed_period_curves_respect_thresholds(self, small_sweep):
        """Averaged achieved periods never exceed the sweep threshold."""
        for curve in small_sweep.curves.values():
            if not curve.objective.endswith("fixed-period"):
                continue
            for point in curve.points:
                if point.n_feasible > 0:
                    assert point.mean_period <= point.threshold * (1 + 1e-9)

    def test_fixed_latency_curves_respect_thresholds(self, small_sweep):
        for curve in small_sweep.curves.values():
            if not curve.objective.endswith("fixed-latency"):
                continue
            for point in curve.points:
                if point.n_feasible > 0:
                    assert point.mean_latency <= point.threshold * (1 + 1e-9)

    def test_tradeoff_shape_for_h1(self, small_sweep):
        """Along H1's curve, smaller periods come with larger latencies."""
        series = small_sweep.curves["Sp mono P"].as_series()
        assert len(series) >= 2
        periods = [p for p, _ in series]
        latencies = [l for _, l in series]
        assert periods[0] <= periods[-1] + 1e-9
        assert latencies[0] >= latencies[-1] - 1e-9

    def test_explicit_instances_and_heuristic_subset(self):
        cfg = experiment_config("E2", 6, 5, n_instances=4)
        instances = generate_instances(cfg, seed=9)
        result = run_sweep(
            cfg, heuristics=["H1", "H5"], n_thresholds=4, instances=instances
        )
        assert set(result.curves) == {"Sp mono P", "Sp mono L"}


class TestRendering:
    def test_render_sweep_mentions_heuristics(self, small_sweep):
        text = render_sweep(small_sweep)
        assert "Sp mono P" in text
        assert "E1" in text
        assert "(" in text and ")" in text
