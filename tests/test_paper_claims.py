"""Integration tests checking the paper's qualitative claims (Section 5.2/5.3).

These are slower, coarse-grained tests working on reduced instance counts.
They assert the *shape* of the results — who wins, in which regime — rather
than absolute values, which depend on the random instance streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.failure import failure_thresholds
from repro.experiments.sweep import run_sweep
from repro.generators.experiments import experiment_config, generate_instances
from repro.heuristics import get_heuristic


@pytest.fixture(scope="module")
def e1_small_cluster():
    """E1, 20 stages, 10 processors — the paper's small-cluster regime."""
    return experiment_config("E1", 20, 10, n_instances=12)


@pytest.fixture(scope="module")
def e1_large_cluster():
    """E1, 20 stages, 100 processors — the paper's large-cluster regime."""
    return experiment_config("E1", 20, 100, n_instances=8)


class TestSmallClusterClaims:
    def test_sp_mono_p_reaches_the_best_periods(self, e1_small_cluster):
        """Section 5.2.1: with p=10 the simple splitting heuristics achieve the
        smallest periods among the fixed-period heuristics."""
        instances = generate_instances(e1_small_cluster, seed=0)
        best_periods = {}
        for key in ("H1", "H2", "H3"):
            heuristic = get_heuristic(key)
            values = [
                heuristic.run(i.application, i.platform, period_bound=1e-9).period
                for i in instances
            ]
            best_periods[key] = float(np.mean(values))
        assert best_periods["H1"] <= best_periods["H2"] + 1e-9
        assert best_periods["H1"] <= best_periods["H3"] + 1e-9

    def test_sp_bi_p_achieves_low_latency_at_relaxed_periods(self, e1_small_cluster):
        """Section 5.2.1: Sp bi P minimises latency with competitive periods."""
        instances = generate_instances(e1_small_cluster, seed=0)
        h1, h4 = get_heuristic("H1"), get_heuristic("H4")
        h1_latencies, h4_latencies = [], []
        for inst in instances:
            app, platform = inst.application, inst.platform
            reachable = h1.run(app, platform, period_bound=1e-9).period
            bound = reachable * 1.5
            r1 = h1.run(app, platform, period_bound=bound)
            r4 = h4.run(app, platform, period_bound=bound)
            if r1.feasible and r4.feasible:
                h1_latencies.append(r1.latency)
                h4_latencies.append(r4.latency)
        assert h1_latencies
        assert np.mean(h4_latencies) <= np.mean(h1_latencies) * 1.05

    def test_failure_threshold_ordering(self, e1_small_cluster):
        """Table 1: Sp mono P has the smallest failure thresholds; the
        fixed-latency heuristics share theirs (and they equal Lemma 1)."""
        rows = failure_thresholds(e1_small_cluster, seed=0)
        by_key = {r.key: r for r in rows}
        assert by_key["H1"].mean_threshold <= by_key["H2"].mean_threshold + 1e-9
        assert by_key["H1"].mean_threshold <= by_key["H3"].mean_threshold + 1e-9
        assert by_key["H5"].per_instance == by_key["H6"].per_instance


class TestLargeClusterClaims:
    def test_more_processors_reduce_period_and_latency(
        self, e1_small_cluster, e1_large_cluster
    ):
        """Section 5.2.2: both periods and latencies drop when p grows."""
        small = generate_instances(e1_small_cluster.with_sizes(n_instances=8), seed=1)
        large = generate_instances(e1_large_cluster, seed=1)
        h1 = get_heuristic("H1")
        small_periods = [
            h1.run(i.application, i.platform, period_bound=1e-9).period for i in small
        ]
        large_periods = [
            h1.run(i.application, i.platform, period_bound=1e-9).period for i in large
        ]
        assert np.mean(large_periods) < np.mean(small_periods)

    def test_three_explo_is_competitive_with_many_processors(self):
        """Section 5.2.2/5.3: with p=100 the 3-exploration heuristic produces
        adequate results — its best reachable period stays within a modest
        factor of Sp mono P's (it consumes processors two at a time but fast
        pairs remain available much longer on a large cluster)."""
        cfg = experiment_config("E1", 20, 100, n_instances=6)
        instances = generate_instances(cfg, seed=2)
        gaps = []
        for inst in instances:
            app, platform = inst.application, inst.platform
            h1 = get_heuristic("H1").run(app, platform, period_bound=1e-9).period
            h2 = get_heuristic("H2").run(app, platform, period_bound=1e-9).period
            gaps.append(h2 / h1)
        assert float(np.mean(gaps)) <= 1.5


class TestSweepShape:
    def test_latency_period_tradeoff_curves(self):
        """The splitting heuristics trace a decreasing latency as the allowed
        period grows (the defining shape of Figures 2-7).  Only thresholds at
        which *every* instance is feasible are compared, because averaging over
        a feasible subset introduces selection bias at the tight end."""
        cfg = experiment_config("E2", 10, 10, n_instances=8)
        sweep = run_sweep(cfg, n_thresholds=6, seed=3)
        for name in ("Sp mono P", "3-Explo mono", "3-Explo bi"):
            curve = sweep.curves[name]
            full = [p for p in curve.points if p.n_feasible == p.n_instances]
            if len(full) < 2:
                continue
            latencies = [p.mean_latency for p in full]
            assert all(
                b <= a + 1e-6 for a, b in zip(latencies, latencies[1:])
            ), name

    def test_fixed_latency_and_fixed_period_families_cover_both_ends(self):
        """Fixed-latency heuristics reach the latency optimum end of the
        trade-off; fixed-period heuristics reach the period optimum end."""
        cfg = experiment_config("E1", 10, 10, n_instances=8)
        sweep = run_sweep(cfg, n_thresholds=6, seed=4)
        h1 = sweep.curves["Sp mono P"]
        h5 = sweep.curves["Sp mono L"]
        assert min(p for p, _ in h1.as_series()) <= min(
            p for p, _ in h5.as_series()
        ) + 1e-9
        assert min(l for _, l in h5.as_series()) <= min(
            l for _, l in h1.as_series()
        ) + 1e-9
