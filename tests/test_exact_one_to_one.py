"""Tests of the one-to-one mapping exact solvers."""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.core.application import PipelineApplication
from repro.core.costs import evaluate
from repro.core.exceptions import InfeasibleError
from repro.core.mapping import IntervalMapping
from repro.core.platform import Platform
from repro.exact.brute_force import brute_force_min_period
from repro.exact.one_to_one import (
    one_to_one_cycle_matrix,
    one_to_one_min_latency,
    one_to_one_min_period,
)
from tests.conftest import random_instance


def brute_force_one_to_one(app, platform, objective):
    """Exhaustive optimum over all one-to-one assignments (small instances)."""
    best = None
    for procs in permutations(range(platform.n_processors), app.n_stages):
        mapping = IntervalMapping.one_to_one(list(procs))
        ev = evaluate(app, platform, mapping)
        value = ev.period if objective == "period" else ev.latency
        if best is None or value < best - 1e-12:
            best = value
    return best


class TestCycleMatrix:
    def test_dimensions_and_values(self, small_app, small_platform):
        cycles = one_to_one_cycle_matrix(small_app, small_platform)
        assert cycles.shape == (4, 3)
        # stage 0 on processor 0: 10/10 (input) + 4/10 (output) + 4/4 (work)
        assert cycles[0, 0] == pytest.approx(1.0 + 0.4 + 1.0)
        # stage 3 on processor 2: 2/10 + 10/10 + 8/1
        assert cycles[3, 2] == pytest.approx(0.2 + 1.0 + 8.0)

    def test_matches_evaluate_for_one_to_one_mapping(self):
        app, platform = random_instance(4, 6, seed=0)
        cycles = one_to_one_cycle_matrix(app, platform)
        mapping = IntervalMapping.one_to_one([3, 0, 5, 2])
        ev = evaluate(app, platform, mapping)
        for k, proc in enumerate(mapping.processors):
            assert ev.interval_costs[k].cycle_time == pytest.approx(cycles[k, proc])


class TestMinPeriod:
    def test_matches_exhaustive_assignment(self):
        for seed in range(4):
            app, platform = random_instance(4, 5, seed=seed)
            _, value = one_to_one_min_period(app, platform)
            assert value == pytest.approx(
                brute_force_one_to_one(app, platform, "period")
            )

    def test_mapping_is_one_to_one_and_valid(self):
        app, platform = random_instance(5, 7, seed=1)
        mapping, value = one_to_one_min_period(app, platform)
        assert mapping.is_one_to_one
        mapping.validate(app, platform)
        assert evaluate(app, platform, mapping).period == pytest.approx(value)

    def test_interval_mappings_can_only_be_better(self):
        """The period-optimal interval mapping is never worse than the
        period-optimal one-to-one mapping (it has strictly more freedom)."""
        for seed in range(3):
            app, platform = random_instance(4, 5, seed=seed)
            _, one_to_one_value = one_to_one_min_period(app, platform)
            _, interval_best = brute_force_min_period(app, platform)
            assert interval_best.period <= one_to_one_value + 1e-9

    def test_requires_enough_processors(self, small_app):
        tiny = Platform([1.0, 2.0], 10.0)
        with pytest.raises(InfeasibleError):
            one_to_one_min_period(small_app, tiny)


class TestMinLatency:
    def test_matches_exhaustive_assignment(self):
        for seed in range(4):
            app, platform = random_instance(4, 5, seed=seed)
            _, value = one_to_one_min_latency(app, platform)
            assert value == pytest.approx(
                brute_force_one_to_one(app, platform, "latency")
            )

    def test_never_beats_lemma1(self):
        from repro.core.costs import optimal_latency

        app, platform = random_instance(5, 6, seed=2)
        _, value = one_to_one_min_latency(app, platform)
        assert value >= optimal_latency(app, platform) - 1e-9

    def test_requires_enough_processors(self):
        app = PipelineApplication([1, 2, 3], [1, 1, 1, 1])
        platform = Platform([1.0], 10.0)
        with pytest.raises(InfeasibleError):
            one_to_one_min_latency(app, platform)
