"""Tests of the executable Theorem 1 / Theorem 2 reductions."""

from __future__ import annotations

import pytest

from repro.chains.heterogeneous import hetero_exact_bisect, normalized_bottleneck
from repro.complexity.nmwts import (
    NMWTSInstance,
    solve_nmwts_bruteforce,
)
from repro.complexity.reduction import (
    build_hetero_instance,
    build_pipeline_instance,
    extract_nmwts_solution,
    partition_from_nmwts_solution,
)
from repro.core.costs import period
from repro.core.mapping import IntervalMapping


def yes_instance() -> NMWTSInstance:
    return NMWTSInstance.from_lists([1, 2], [2, 1], [3, 3])


def no_instance() -> NMWTSInstance:
    return NMWTSInstance.from_lists([0, 0], [1, 3], [0, 4])


class TestConstruction:
    def test_sizes_match_theorem(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        big_m = int(inst.max_value)
        assert reduction.big_m == big_m
        assert reduction.block_size == big_m + 3
        assert reduction.n_tasks == (big_m + 3) * inst.m
        assert reduction.n_processors == 3 * inst.m
        assert reduction.bound == 1.0

    def test_weight_structure(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        m_val = reduction.big_m
        for i in range(inst.m):
            block = reduction.values[
                reduction.block_offset(i): reduction.block_offset(i) + reduction.block_size
            ]
            assert block[0] == 2 * m_val + inst.x[i]  # A_i = B + x_i
            assert all(v == 1.0 for v in block[1: m_val + 1])
            assert block[m_val + 1] == 5 * m_val  # C
            assert block[m_val + 2] == 7 * m_val  # D

    def test_speed_structure(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        m_val, m = reduction.big_m, inst.m
        for i in range(m):
            assert reduction.speeds[i] == 2 * m_val + inst.z[i]
            assert reduction.speeds[m + i] == 5 * m_val + m_val - inst.y[i]
            assert reduction.speeds[2 * m + i] == 7 * m_val

    def test_non_integer_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_hetero_instance(NMWTSInstance.from_lists([1.5], [1], [2.5]))
        with pytest.raises(ValueError):
            build_hetero_instance(NMWTSInstance.from_lists([-1], [1], [0]))

    def test_zero_max_value_rejected(self):
        with pytest.raises(ValueError):
            build_hetero_instance(NMWTSInstance.from_lists([0], [0], [0]))


class TestForwardDirection:
    def test_solution_achieves_bound(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        solution = solve_nmwts_bruteforce(inst)
        assert solution is not None
        intervals, processors = partition_from_nmwts_solution(reduction, solution)
        achieved = normalized_bottleneck(
            reduction.values, reduction.speeds, intervals, processors
        )
        assert achieved <= reduction.bound + 1e-9
        # the partition covers every task exactly once with distinct processors
        covered = sorted(
            stage for (start, end) in intervals for stage in range(start, end + 1)
        )
        assert covered == list(range(reduction.n_tasks))
        assert len(set(processors)) == len(processors)

    def test_invalid_solution_rejected(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        from repro.complexity.nmwts import NMWTSSolution

        bogus = NMWTSSolution((1, 0), (0, 1))
        with pytest.raises(ValueError):
            partition_from_nmwts_solution(reduction, bogus)


class TestBackwardDirection:
    def test_round_trip(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        solution = solve_nmwts_bruteforce(inst)
        intervals, processors = partition_from_nmwts_solution(reduction, solution)
        recovered = extract_nmwts_solution(reduction, intervals, processors)
        assert recovered is not None
        # recovered permutations must solve the original instance
        from repro.complexity.nmwts import verify_nmwts

        assert verify_nmwts(inst, recovered)

    def test_partition_above_bound_rejected(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        # a deliberately bad partition: everything on the first processor
        intervals = [(0, reduction.n_tasks - 1)]
        processors = [0]
        assert extract_nmwts_solution(reduction, intervals, processors) is None

    def test_yes_no_equivalence_on_small_instances(self):
        """The reduction preserves YES/NO (checked with the exact solver)."""
        for inst in (yes_instance(), no_instance()):
            reduction = build_hetero_instance(inst)
            exact = hetero_exact_bisect(reduction.values, reduction.speeds)
            nmwts_solvable = solve_nmwts_bruteforce(inst) is not None
            hetero_solvable = exact.bottleneck <= reduction.bound + 1e-6
            assert nmwts_solvable == hetero_solvable


class TestTheorem2:
    def test_pipeline_instance_matches_partition_cost(self):
        inst = yes_instance()
        reduction = build_hetero_instance(inst)
        app, platform, bound = build_pipeline_instance(reduction)
        assert app.n_stages == reduction.n_tasks
        assert platform.n_processors == reduction.n_processors
        assert bound == reduction.bound
        # with zero communications, the mapping period equals the normalised
        # bottleneck of the corresponding partition
        solution = solve_nmwts_bruteforce(inst)
        intervals, processors = partition_from_nmwts_solution(reduction, solution)
        mapping = IntervalMapping(intervals, processors)
        assert period(app, platform, mapping) == pytest.approx(
            normalized_bottleneck(
                reduction.values, reduction.speeds, intervals, processors
            )
        )
        assert period(app, platform, mapping) <= bound + 1e-9
