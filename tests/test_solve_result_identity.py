"""`SolveResult.identity()`: the single run-provenance exclusion point.

The parallel engine's contract is that every *solution* field of a result is
byte-identical between serial, pooled and cache-served runs; only the
``wall_time`` stamp (measures the actual run), the ``cache_hit`` flag and
the ``backend`` stamp (both record *how* the result was obtained)
legitimately differ.  These tests pin down the contract's single
implementation point:

* ``identity()`` covers every dataclass field except the declared
  nondeterministic ones — automatically, so a future field cannot silently
  escape determinism comparisons;
* two runs of the same solve differ (at most) on the provenance stamps and
  compare equal through ``identity()``, byte-for-byte (pickled);
* the remaining fields are byte-stable across worker counts;
* a warm cache replay has the same ``identity()`` as its cold solve.
"""

from __future__ import annotations

import dataclasses
import pickle

from repro.experiments.runner import run_solver
from repro.generators.experiments import experiment_config, generate_instances
from repro.solvers.base import SolveResult
from repro.solvers.registry import get_solver


def _instances(n: int = 4):
    config = experiment_config("E2", 6, 5, n_instances=n)
    return generate_instances(config, seed=11)


class TestIdentityContract:
    def test_identity_covers_every_field_except_run_provenance(self):
        field_names = {f.name for f in dataclasses.fields(SolveResult)}
        instance = _instances(1)[0]
        result = get_solver("H1").run(
            instance.application, instance.platform, period_bound=10.0
        )
        identity = result.identity()
        assert set(identity) == field_names - {"wall_time", "cache_hit", "backend"}
        assert SolveResult.NONDETERMINISTIC_FIELDS == (
            "wall_time", "cache_hit", "backend",
        )

    def test_identity_ignores_wall_time_only(self):
        instance = _instances(1)[0]
        solver = get_solver("bitmask-dp-latency-for-period")
        first = solver.run(instance.application, instance.platform, period_bound=20.0)
        second = solver.run(instance.application, instance.platform, period_bound=20.0)
        # two measured runs: identical solutions, (almost surely) distinct stamps
        assert first.identity() == second.identity()
        assert first.wall_time > 0.0 and second.wall_time > 0.0
        # a result that differs on a *solution* field must not compare equal
        tweaked = dataclasses.replace(first, period=first.period + 1.0)
        assert tweaked.identity() != first.identity()

    def test_identity_byte_stable_across_workers(self):
        instances = _instances(5)
        serial = run_solver("H1", instances, 8.0)
        pooled = run_solver("H1", instances, 8.0, workers=3, batch_size=2)
        serial_bytes = [pickle.dumps(r.result.identity()) for r in serial]
        pooled_bytes = [pickle.dumps(r.result.identity()) for r in pooled]
        assert serial_bytes == pooled_bytes

    def test_identity_ignores_cache_hit(self):
        from repro.cache import SolveCache

        instances = _instances(3)
        cache = SolveCache()
        cold = run_solver("H1", instances, 8.0, cache=cache)
        warm = run_solver("H1", instances, 8.0, cache=cache)
        assert all(not r.result.cache_hit for r in cold)
        assert all(r.result.cache_hit for r in warm)
        assert [pickle.dumps(a.result.identity()) for a in cold] == [
            pickle.dumps(b.result.identity()) for b in warm
        ]

    def test_backend_stamp_excluded_from_identity_and_cache_key(self):
        """Backends are bit-identical, so the stamp must not split the cache:
        a result solved under one backend serves a request made under
        another, and ``identity()`` compares equal across the stamps."""
        from repro.cache import SolveCache
        from repro.core import kernels

        instances = _instances(3)
        cache = SolveCache()
        with kernels.use_backend("numpy"):
            cold = run_solver("H1", instances, 8.0, cache=cache)
        with kernels.use_backend("compiled"):
            warm = run_solver("H1", instances, 8.0, cache=cache)
        assert all(r.result.backend == "numpy" for r in cold)
        # every request hit despite the different active backend
        assert all(r.result.cache_hit for r in warm)
        assert [pickle.dumps(a.result.identity()) for a in cold] == [
            pickle.dumps(b.result.identity()) for b in warm
        ]
