"""Unit tests for the polynomial homogeneous-platform dynamic programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.application import PipelineApplication
from repro.core.costs import evaluate, optimal_latency
from repro.core.exceptions import InfeasibleError, InvalidPlatformError
from repro.core.platform import Platform
from repro.exact.brute_force import (
    brute_force_min_latency,
    brute_force_min_period,
)
from repro.exact.homogeneous_dp import (
    homogeneous_min_latency_for_period,
    homogeneous_min_period,
    homogeneous_min_period_for_latency,
)


def random_homogeneous_instance(seed: int, n: int = 7, p: int = 3):
    rng = np.random.default_rng(seed)
    app = PipelineApplication(
        rng.uniform(1, 20, size=n), rng.uniform(1, 20, size=n + 1)
    )
    platform = Platform.fully_homogeneous(p, speed=float(rng.integers(1, 10)), bandwidth=10.0)
    return app, platform


class TestMinPeriod:
    def test_matches_brute_force(self):
        for seed in range(5):
            app, platform = random_homogeneous_instance(seed)
            _, bf = brute_force_min_period(app, platform)
            mapping, value = homogeneous_min_period(app, platform)
            assert value == pytest.approx(bf.period, rel=1e-9)
            assert evaluate(app, platform, mapping).period == pytest.approx(value)

    def test_rejects_heterogeneous_speeds(self, small_app, small_platform):
        with pytest.raises(InvalidPlatformError):
            homogeneous_min_period(small_app, small_platform)

    def test_single_processor(self):
        app = PipelineApplication([1, 2, 3], [1, 1, 1, 1])
        platform = Platform.fully_homogeneous(1, speed=2.0, bandwidth=1.0)
        mapping, value = homogeneous_min_period(app, platform)
        assert mapping.n_intervals == 1
        assert value == pytest.approx(evaluate(app, platform, mapping).period)


class TestMinLatencyForPeriod:
    def test_matches_brute_force(self):
        for seed in range(5):
            app, platform = random_homogeneous_instance(seed)
            _, best = brute_force_min_period(app, platform)
            bound = best.period * 1.25
            _, bf = brute_force_min_latency(app, platform, period_bound=bound)
            mapping, value = homogeneous_min_latency_for_period(app, platform, bound)
            assert value == pytest.approx(bf.latency, rel=1e-9)
            assert evaluate(app, platform, mapping).period <= bound + 1e-9

    def test_infeasible_bound(self):
        app, platform = random_homogeneous_instance(0)
        with pytest.raises(InfeasibleError):
            homogeneous_min_latency_for_period(app, platform, 1e-9)

    def test_huge_bound_matches_lemma1(self):
        app, platform = random_homogeneous_instance(1)
        _, value = homogeneous_min_latency_for_period(app, platform, 1e9)
        assert value == pytest.approx(optimal_latency(app, platform))


class TestMinPeriodForLatency:
    def test_matches_brute_force(self):
        for seed in range(4):
            app, platform = random_homogeneous_instance(seed, n=6, p=3)
            base = optimal_latency(app, platform)
            for factor in (1.0, 1.5):
                bound = base * factor
                _, bf = brute_force_min_period(app, platform, latency_bound=bound)
                mapping, value = homogeneous_min_period_for_latency(app, platform, bound)
                assert value == pytest.approx(bf.period, rel=1e-9)
                assert evaluate(app, platform, mapping).latency <= bound + 1e-9

    def test_infeasible_bound(self):
        app, platform = random_homogeneous_instance(2)
        with pytest.raises(InfeasibleError):
            homogeneous_min_period_for_latency(app, platform, 1e-9)


class TestVectorizedKernels:
    """The NumPy DP kernels must match the scalar reference loops."""

    def test_cycle_matrix_identical(self):
        from repro.exact.homogeneous_dp import _cycle_matrix, _cycle_matrix_scalar

        for seed in range(6):
            app, platform = random_homogeneous_instance(seed, n=9, p=4)
            assert np.array_equal(
                _cycle_matrix(app, platform), _cycle_matrix_scalar(app, platform)
            )

    def test_cycle_matrix_with_zero_communications(self):
        from repro.exact.homogeneous_dp import _cycle_matrix, _cycle_matrix_scalar

        app = PipelineApplication([4.0, 2.0, 6.0], [0.0, 3.0, 5.0, 0.0])
        platform = Platform.fully_homogeneous(3, speed=2.0, bandwidth=10.0)
        assert np.array_equal(
            _cycle_matrix(app, platform), _cycle_matrix_scalar(app, platform)
        )

    def test_min_period_paths_agree(self):
        for seed in range(6):
            app, platform = random_homogeneous_instance(seed, n=10, p=4)
            m_vec, v_vec = homogeneous_min_period(app, platform)
            m_sca, v_sca = homogeneous_min_period(app, platform, vectorized=False)
            assert v_vec == v_sca
            assert m_vec == m_sca

    def test_min_latency_for_period_paths_agree(self):
        for seed in range(6):
            app, platform = random_homogeneous_instance(seed, n=10, p=4)
            _, optimum = homogeneous_min_period(app, platform)
            for factor in (1.0, 1.3, 2.0):
                bound = optimum * factor
                _, l_vec = homogeneous_min_latency_for_period(app, platform, bound)
                _, l_sca = homogeneous_min_latency_for_period(
                    app, platform, bound, vectorized=False
                )
                assert l_vec == pytest.approx(l_sca, rel=1e-12)

    def test_min_period_for_latency_paths_agree(self):
        for seed in range(4):
            app, platform = random_homogeneous_instance(seed, n=8, p=3)
            bound = optimal_latency(app, platform) * 1.4
            _, p_vec = homogeneous_min_period_for_latency(app, platform, bound)
            _, p_sca = homogeneous_min_period_for_latency(
                app, platform, bound, vectorized=False
            )
            assert p_vec == pytest.approx(p_sca, rel=1e-12)
