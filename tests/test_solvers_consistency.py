"""Cross-family consistency: heuristics can never beat the exact solvers.

Property-style checks over seeded random *homogeneous* instances, with every
solver fetched through the unified registry: the homogeneous DP optimum is a
floor for the period of every registered heuristic, and the DP's
period-constrained latency is a floor for the latency of every feasible
heuristic run at the same bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.application import PipelineApplication
from repro.core.costs import optimal_latency
from repro.core.platform import Platform
from repro.solvers import Objective, get_solver, resolve_solvers

#: relative tolerance of the floor comparisons (solvers use ~1e-9 epsilons)
_REL_TOL = 1e-6


def _random_homogeneous_instance(
    seed: int,
) -> tuple[PipelineApplication, Platform]:
    rng = np.random.default_rng(987_000 + seed)
    n = int(rng.integers(4, 10))
    p = int(rng.integers(2, 6))
    works = rng.uniform(1.0, 20.0, n)
    comms = rng.uniform(1.0, 10.0, n + 1)
    speed = float(rng.uniform(1.0, 8.0))
    app = PipelineApplication(works, comms, name=f"consistency-{seed}")
    platform = Platform.communication_homogeneous(
        [speed] * p, bandwidth=10.0, name=f"hom-{seed}"
    )
    return app, platform


@pytest.mark.parametrize("seed", range(8))
def test_no_heuristic_beats_the_homogeneous_dp_period(seed):
    """Registry-fetched DP optimum bounds every heuristic's period from below."""
    app, platform = _random_homogeneous_instance(seed)
    optimum = get_solver("hom-dp-period").run(app, platform).period
    latency_floor = optimal_latency(app, platform)

    for solver in resolve_solvers("heuristics"):
        if solver.objective == Objective.MIN_LATENCY_FOR_PERIOD:
            # push the heuristic to its best reachable period
            result = solver.run(app, platform, period_bound=1e-9)
        else:
            # an unbounded latency budget lets the heuristic chase the period
            result = solver.run(app, platform, latency_bound=latency_floor * 100)
        assert result.period >= optimum * (1 - _REL_TOL), (
            f"{solver.name} reported period {result.period} below the "
            f"homogeneous DP optimum {optimum}"
        )
        assert result.latency >= latency_floor * (1 - _REL_TOL), (
            f"{solver.name} reported latency below the Lemma 1 optimum"
        )


@pytest.mark.parametrize("seed", range(8))
def test_feasible_heuristics_dominate_dp_latency_at_same_bound(seed):
    """At a common period bound, the DP's latency is optimal."""
    app, platform = _random_homogeneous_instance(seed)
    optimum = get_solver("hom-dp-period").run(app, platform).period
    bound = optimum * 1.5
    dp_latency = get_solver("hom-dp-latency-for-period").run(
        app, platform, period_bound=bound
    )
    assert dp_latency.feasible

    for solver in resolve_solvers("heuristics"):
        if solver.objective != Objective.MIN_LATENCY_FOR_PERIOD:
            continue
        result = solver.run(app, platform, period_bound=bound)
        if not result.feasible:
            continue
        assert result.latency >= dp_latency.latency * (1 - _REL_TOL), (
            f"{solver.name} reported latency {result.latency} below the DP "
            f"optimum {dp_latency.latency} at period bound {bound}"
        )


@pytest.mark.parametrize("seed", range(4))
def test_brute_force_agrees_with_homogeneous_dp(seed):
    """On tiny homogeneous instances the two exact families must agree."""
    rng = np.random.default_rng(55_000 + seed)
    n = int(rng.integers(3, 7))
    p = int(rng.integers(2, 4))
    app = PipelineApplication(
        rng.uniform(1.0, 20.0, n), rng.uniform(1.0, 10.0, n + 1)
    )
    platform = Platform.communication_homogeneous([3.0] * p, bandwidth=10.0)

    dp = get_solver("hom-dp-period").run(app, platform)
    bf = get_solver("brute-force-period").run(app, platform)
    assert bf.period == pytest.approx(dp.period, rel=1e-9)
