"""Differential parity of the kernel backends over the scenario families.

The backend contract (:mod:`repro.core.kernels`) is two-tiered:

* ``compiled`` is **bit-identical** to ``numpy`` — the engines compute the
  same elementwise terms and every reduction stays in numpy, so periods,
  latencies and DP tables match to the last bit;
* ``scalar`` (the independently-auditable Python loops) agrees within
  1e-9 relative — same mathematics, different summation order.

These properties are asserted here over instances drawn from **all eight
scenario families** (the differential-fuzzing generators, which cover the
degenerate shapes the experiment families never produce), plus a replay of
the archived counterexample corpus with the compiled backend active: every
instance that once broke a solver must keep its full solver cross-check
green when the compiled kernels serve the hot paths.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.costs import evaluate, evaluate_batch
from repro.core.kernels import compiled, dispatch, reference
from repro.core.mapping import IntervalMapping
from repro.core.platform import Platform
from repro.exact.homogeneous_dp import (
    homogeneous_min_latency_for_period,
    homogeneous_min_period,
)
from repro.scenarios import (
    differential_check,
    family_names,
    generate_scenarios,
    load_corpus,
)
from tests.test_corpus_replay import CORPUS_DIR

_REL_TOL = 1e-9

ENTRIES = load_corpus(CORPUS_DIR)


@contextmanager
def _compiled_floor(value: int):
    """Temporarily lower the elementwise dispatch floor.

    The dispatcher routes small batches to numpy on purpose (marshalling
    overhead); parity tests must force the compiled elementwise kernels to
    actually run on small hypothesis-sized batches.
    """
    previous = dispatch.ELEMENTWISE_COMPILED_MIN
    dispatch.ELEMENTWISE_COMPILED_MIN = value
    try:
        yield
    finally:
        dispatch.ELEMENTWISE_COMPILED_MIN = previous


# ----------------------------------------------------------------------------- #
# strategies: one scenario from any family, plus mappings for it
# ----------------------------------------------------------------------------- #
@st.composite
def scenario_instances(draw):
    """An (application, platform) pair drawn from any scenario family."""
    family = draw(st.sampled_from(family_names()))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    scenario = generate_scenarios(1, [family], seed)[0]
    return scenario.application, scenario.platform


def _random_mappings(app, platform, seed: int, count: int = 6):
    """Valid interval mappings: contiguous stage partitions, distinct procs."""
    rng = np.random.default_rng(seed)
    n, p = app.n_stages, platform.n_processors
    mappings = []
    for _ in range(count):
        k = int(rng.integers(1, min(n, p) + 1))
        boundaries = sorted(
            int(b) for b in rng.choice(np.arange(n - 1), size=k - 1, replace=False)
        ) if k > 1 else []
        procs = [int(q) for q in rng.permutation(p)[:k]]
        mappings.append(IntervalMapping.from_boundaries(boundaries, procs, n))
    return mappings


# ----------------------------------------------------------------------------- #
# elementwise kernels: evaluate_batch across backends
# ----------------------------------------------------------------------------- #
class TestBatchParity:
    @given(case=scenario_instances(), mapping_seed=st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_compiled_bit_identical_to_numpy(self, case, mapping_seed):
        """Property: compiled evaluate_batch == numpy, bit for bit."""
        app, platform = case
        mappings = _random_mappings(app, platform, mapping_seed)
        with _compiled_floor(0):
            with kernels.use_backend("numpy"):
                ref = evaluate_batch(app, platform, mappings)
            with kernels.use_backend("compiled"):
                got = evaluate_batch(app, platform, mappings)
        assert (ref.periods == got.periods).all()
        assert (ref.latencies == got.latencies).all()

    @given(case=scenario_instances(), mapping_seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_scalar_agrees_within_1e9(self, case, mapping_seed):
        """Property: the scalar loops agree with the batch within 1e-9."""
        app, platform = case
        mappings = _random_mappings(app, platform, mapping_seed)
        with kernels.use_backend("compiled"), _compiled_floor(0):
            batch = evaluate_batch(app, platform, mappings)
        for i, mapping in enumerate(mappings):
            scalar = evaluate(app, platform, mapping)
            assert batch.periods[i] == pytest.approx(scalar.period, rel=_REL_TOL)
            assert batch.latencies[i] == pytest.approx(scalar.latency, rel=_REL_TOL)


# ----------------------------------------------------------------------------- #
# DP table kernels: the homogeneous solvers across backends
# ----------------------------------------------------------------------------- #
def _homogenized(platform) -> Platform:
    """The platform with one speed and one bandwidth (what the DP needs)."""
    speed = float(np.median(platform.speeds))
    return Platform.communication_homogeneous(
        [speed] * platform.n_processors, bandwidth=4.0
    )


class TestHomogeneousDpParity:
    @given(case=scenario_instances())
    @settings(max_examples=60, deadline=None)
    def test_min_period_identical_numpy_vs_compiled(self, case):
        """Property: same optimal period *and* same mapping, bitwise."""
        app, platform = case
        hom = _homogenized(platform)
        ref_mapping, ref_period = homogeneous_min_period(app, hom, backend="numpy")
        got_mapping, got_period = homogeneous_min_period(app, hom, backend="compiled")
        assert got_period == ref_period
        assert got_mapping.intervals == ref_mapping.intervals
        scalar_mapping, scalar_period = homogeneous_min_period(
            app, hom, backend="scalar"
        )
        assert scalar_period == pytest.approx(ref_period, rel=_REL_TOL)

    @given(case=scenario_instances(), slack=st.floats(1.0, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_min_latency_identical_numpy_vs_compiled(self, case, slack):
        """Property: the bounded-latency DP matches across backends."""
        app, platform = case
        hom = _homogenized(platform)
        _, period = homogeneous_min_period(app, hom, backend="numpy")
        bound = period * slack
        ref_mapping, ref_latency = homogeneous_min_latency_for_period(
            app, hom, bound, backend="numpy"
        )
        got_mapping, got_latency = homogeneous_min_latency_for_period(
            app, hom, bound, backend="compiled"
        )
        assert got_latency == ref_latency
        assert got_mapping.intervals == ref_mapping.intervals
        _, scalar_latency = homogeneous_min_latency_for_period(
            app, hom, bound, backend="scalar"
        )
        assert scalar_latency == pytest.approx(ref_latency, rel=_REL_TOL)

    @given(
        n=st.integers(2, 16),
        p=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_raw_table_kernels_bit_identical(self, n, p, seed):
        """The engine's table kernels match numpy exactly on random inputs.

        Bypasses the dispatcher so the test is meaningful even when a floor
        or routing rule changes; skip-free because it only runs when an
        engine actually loaded (otherwise dispatch == numpy trivially and
        the other tests still hold).
        """
        funcs = compiled.engine_functions()
        if funcs is None:
            return
        rng = np.random.default_rng(seed)
        cycle = rng.uniform(0.1, 10.0, size=(n, n))
        term = rng.uniform(0.1, 10.0, size=(n, n))
        lower = np.tril_indices(n, k=-1)
        cycle[lower] = np.inf
        term[lower] = np.inf
        bound = float(np.median(cycle[np.isfinite(cycle)]))

        ref_dp, ref_parent = reference.min_period_tables_numpy(cycle, n, p)
        got_dp, got_parent = funcs["min_period_tables"](cycle, n, p)
        assert (ref_dp == got_dp).all() and (ref_parent == got_parent).all()

        ref_dp, ref_parent = reference.min_latency_tables_numpy(
            cycle, term, bound, n, p
        )
        got_dp, got_parent = funcs["min_latency_tables"](cycle, term, bound, n, p)
        assert (ref_dp == got_dp).all() and (ref_parent == got_parent).all()


# ----------------------------------------------------------------------------- #
# corpus replay under the compiled backend
# ----------------------------------------------------------------------------- #
@pytest.mark.skipif(not ENTRIES, reason="corpus is empty")
class TestCorpusReplayCompiled:
    @pytest.mark.parametrize(
        "entry", ENTRIES, ids=[entry.label for entry in ENTRIES]
    )
    def test_corpus_entry_green_with_compiled_kernels(self, entry):
        """Every archived counterexample stays green with backend=compiled."""
        with kernels.use_backend("compiled"):
            report = differential_check(entry.application, entry.platform)
        assert report.ok, report.failures
