"""Unit tests for :mod:`repro.core.platform`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidPlatformError
from repro.core.platform import Platform, PlatformClass, Processor


class TestProcessor:
    def test_compute_time(self):
        proc = Processor(index=0, speed=4.0)
        assert proc.compute_time(8.0) == pytest.approx(2.0)

    def test_default_name(self):
        assert Processor(index=2, speed=1.0).name == "P3"


class TestConstruction:
    def test_scalar_bandwidth(self):
        platform = Platform([1.0, 2.0], 10.0)
        assert platform.n_processors == 2
        assert platform.bandwidth(0, 1) == 10.0
        assert platform.uniform_bandwidth == 10.0

    def test_matrix_bandwidth(self):
        mat = [[0.0, 5.0], [5.0, 0.0]]
        platform = Platform([1.0, 2.0], mat)
        assert platform.bandwidth(0, 1) == 5.0
        assert platform.bandwidth(1, 0) == 5.0

    def test_intra_processor_bandwidth_is_infinite(self):
        platform = Platform([1.0, 2.0], 10.0)
        assert platform.bandwidth(0, 0) == float("inf")

    def test_empty_speeds_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([], 10.0)

    def test_non_positive_speed_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([1.0, 0.0], 10.0)
        with pytest.raises(InvalidPlatformError):
            Platform([1.0, -1.0], 10.0)

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([1.0], 0.0)

    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([1.0, 2.0], [[1.0]])

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([1.0, 2.0], [[0.0, 1.0], [2.0, 0.0]])

    def test_negative_matrix_entry_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([1.0, 2.0], [[0.0, -1.0], [-1.0, 0.0]])

    def test_io_bandwidth_defaults_and_overrides(self):
        platform = Platform([1.0, 2.0], 10.0)
        assert platform.input_bandwidth == 10.0
        assert platform.output_bandwidth == 10.0
        custom = Platform([1.0, 2.0], 10.0, input_bandwidth=3.0, output_bandwidth=4.0)
        assert custom.input_bandwidth == 3.0
        assert custom.output_bandwidth == 4.0

    def test_invalid_io_bandwidth_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([1.0], 10.0, input_bandwidth=0.0)


class TestClassification:
    def test_fully_homogeneous(self):
        platform = Platform.fully_homogeneous(3, speed=2.0, bandwidth=5.0)
        assert platform.platform_class is PlatformClass.FULLY_HOMOGENEOUS
        assert platform.is_communication_homogeneous

    def test_communication_homogeneous(self, small_platform):
        assert (
            small_platform.platform_class is PlatformClass.COMMUNICATION_HOMOGENEOUS
        )
        assert small_platform.is_communication_homogeneous

    def test_fully_heterogeneous(self):
        mat = [[0.0, 5.0, 2.0], [5.0, 0.0, 3.0], [2.0, 3.0, 0.0]]
        platform = Platform.fully_heterogeneous([1.0, 2.0, 3.0], mat)
        assert platform.platform_class is PlatformClass.FULLY_HETEROGENEOUS
        assert not platform.is_communication_homogeneous
        with pytest.raises(InvalidPlatformError):
            _ = platform.uniform_bandwidth

    def test_matrix_with_identical_entries_is_comm_homogeneous(self):
        mat = np.full((3, 3), 7.0)
        platform = Platform([1.0, 2.0, 3.0], mat)
        assert platform.is_communication_homogeneous
        assert platform.uniform_bandwidth == 7.0


class TestOrderingHelpers:
    def test_processors_by_speed_descending(self, small_platform):
        assert small_platform.processors_by_speed() == [0, 1, 2]

    def test_processors_by_speed_tie_break_by_index(self):
        platform = Platform([2.0, 5.0, 5.0, 1.0], 10.0)
        assert platform.processors_by_speed() == [1, 2, 0, 3]
        assert platform.processors_by_speed(descending=False) == [3, 0, 1, 2]

    def test_fastest_processor_and_speeds(self, small_platform):
        assert small_platform.fastest_processor == 0
        assert small_platform.max_speed == 4.0
        assert small_platform.total_speed == 7.0

    def test_speed_lookup_and_bounds(self, small_platform):
        assert small_platform.speed(1) == 2.0
        with pytest.raises(InvalidPlatformError):
            small_platform.speed(3)
        with pytest.raises(InvalidPlatformError):
            small_platform.speed(-1)


class TestRestrictAndIteration:
    def test_restrict_scalar_bandwidth(self, small_platform):
        sub = small_platform.restrict([2, 0])
        assert sub.n_processors == 2
        assert list(sub.speeds) == [1.0, 4.0]
        assert sub.uniform_bandwidth == 10.0

    def test_restrict_matrix_bandwidth(self):
        mat = [[0.0, 5.0, 2.0], [5.0, 0.0, 3.0], [2.0, 3.0, 0.0]]
        platform = Platform.fully_heterogeneous([1.0, 2.0, 3.0], mat)
        sub = platform.restrict([0, 2])
        assert sub.bandwidth(0, 1) == 2.0

    def test_restrict_empty_rejected(self, small_platform):
        with pytest.raises(InvalidPlatformError):
            small_platform.restrict([])

    def test_iteration_yields_processors(self, small_platform):
        procs = list(small_platform)
        assert [p.index for p in procs] == [0, 1, 2]
        assert [p.speed for p in procs] == [4.0, 2.0, 1.0]

    def test_bandwidth_matrix_has_inf_diagonal(self, small_platform):
        mat = small_platform.bandwidth_matrix()
        assert np.all(np.isinf(np.diag(mat)))
        assert mat[0, 1] == 10.0


class TestEqualityAndDescribe:
    def test_equality(self):
        a = Platform([1.0, 2.0], 10.0)
        b = Platform([1.0, 2.0], 10.0)
        c = Platform([1.0, 3.0], 10.0)
        assert a == b
        assert a != c

    def test_describe_mentions_processors_and_bandwidth(self, small_platform):
        text = small_platform.describe()
        assert "P1" in text and "P3" in text
        assert "b=10" in text

    def test_repr(self, small_platform):
        assert "p=3" in repr(small_platform)
