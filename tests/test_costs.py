"""Unit tests for the analytical cost model (eqs. 1 and 2)."""

from __future__ import annotations

import pytest

from repro.core.application import PipelineApplication
from repro.core.costs import (
    evaluate,
    interval_compute_time,
    interval_cycle_time,
    latency,
    latency_of_intervals,
    optimal_latency,
    optimal_latency_mapping,
    period,
    period_lower_bound,
)
from repro.core.exceptions import InvalidMappingError
from repro.core.mapping import Interval, IntervalMapping
from repro.core.platform import Platform


class TestSingleInterval:
    """Whole pipeline on one processor: hand-checked numbers.

    works = [4, 2, 6, 8], comms = [10, 4, 6, 2, 10], b = 10, fastest speed 4:
    cycle = 10/10 + 20/4 + 10/10 = 7 and latency = 7 as well.
    """

    def test_period_equals_latency(self, small_app, small_platform, single_interval_mapping):
        assert period(small_app, small_platform, single_interval_mapping) == pytest.approx(7.0)
        assert latency(small_app, small_platform, single_interval_mapping) == pytest.approx(7.0)

    def test_evaluate_consistency(self, small_app, small_platform, single_interval_mapping):
        ev = evaluate(small_app, small_platform, single_interval_mapping)
        assert ev.period == pytest.approx(7.0)
        assert ev.latency == pytest.approx(7.0)
        assert ev.n_intervals == 1
        assert ev.bottleneck_interval == 0


class TestTwoIntervals:
    """Stages [0,1] on P1 (speed 4) and [2,3] on P2 (speed 2).

    interval 0: 10/10 + 6/4 + 6/10  = 3.1
    interval 1:  6/10 + 14/2 + 10/10 = 8.6
    period = 8.6, latency = (1 + 1.5) + (0.6 + 7) + 1 = 11.1
    """

    def test_period(self, small_app, small_platform, two_interval_mapping):
        assert period(small_app, small_platform, two_interval_mapping) == pytest.approx(8.6)

    def test_latency(self, small_app, small_platform, two_interval_mapping):
        assert latency(small_app, small_platform, two_interval_mapping) == pytest.approx(11.1)

    def test_interval_costs_breakdown(self, small_app, small_platform, two_interval_mapping):
        ev = evaluate(small_app, small_platform, two_interval_mapping)
        first, second = ev.interval_costs
        assert first.input_time == pytest.approx(1.0)
        assert first.compute_time == pytest.approx(1.5)
        assert first.output_time == pytest.approx(0.6)
        assert first.cycle_time == pytest.approx(3.1)
        assert second.cycle_time == pytest.approx(8.6)
        assert ev.bottleneck_interval == 1

    def test_latency_counts_only_crossed_boundaries(self, small_app, small_platform):
        """Intra-interval communications are free (they never appear)."""
        one = IntervalMapping.single_processor(4, 0)
        split = IntervalMapping([(0, 1), (2, 3)], [0, 1])
        lat_one = latency(small_app, small_platform, one)
        lat_split = latency(small_app, small_platform, split)
        # splitting adds the crossed boundary (0.6 twice... once as input of the
        # second interval) and the slowdown of the second processor
        assert lat_split > lat_one


class TestHelpers:
    def test_interval_compute_time(self, small_app, small_platform):
        assert interval_compute_time(
            small_app, small_platform, Interval(1, 2), 1
        ) == pytest.approx(8 / 2)

    def test_interval_cycle_time_matches_evaluate(self, small_app, small_platform):
        mapping = IntervalMapping([(0, 0), (1, 3)], [1, 0])
        ev = evaluate(small_app, small_platform, mapping)
        c0 = interval_cycle_time(small_app, small_platform, Interval(0, 0), 1, None, 0)
        c1 = interval_cycle_time(small_app, small_platform, Interval(1, 3), 0, 1, None)
        assert ev.interval_costs[0].cycle_time == pytest.approx(c0)
        assert ev.interval_costs[1].cycle_time == pytest.approx(c1)

    def test_latency_of_intervals_matches_latency(self, small_app, small_platform):
        mapping = IntervalMapping([(0, 1), (2, 3)], [0, 2])
        expected = latency(small_app, small_platform, mapping)
        got = latency_of_intervals(
            small_app,
            small_platform,
            list(mapping.intervals),
            list(mapping.processors),
        )
        assert got == pytest.approx(expected)

    def test_latency_of_intervals_rejects_mismatch(self, small_app, small_platform):
        with pytest.raises(InvalidMappingError):
            latency_of_intervals(small_app, small_platform, [Interval(0, 1)], [0, 1])

    def test_zero_communication_is_free(self):
        app = PipelineApplication([2.0, 2.0], [0.0, 0.0, 0.0])
        platform = Platform([1.0, 1.0], 10.0)
        mapping = IntervalMapping([(0, 0), (1, 1)], [0, 1])
        assert period(app, platform, mapping) == pytest.approx(2.0)
        assert latency(app, platform, mapping) == pytest.approx(4.0)


class TestDominance:
    def test_mapping_evaluation_dominates(self, small_app, small_platform):
        better = evaluate(
            small_app, small_platform, IntervalMapping.single_processor(4, 0)
        )
        worse = evaluate(
            small_app, small_platform, IntervalMapping.single_processor(4, 2)
        )
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(better)


class TestOptimalLatency:
    def test_optimal_latency_is_fastest_processor(self, small_app, small_platform):
        assert optimal_latency(small_app, small_platform) == pytest.approx(7.0)
        mapping = optimal_latency_mapping(small_app, small_platform)
        assert mapping.processors == (small_platform.fastest_processor,)

    def test_no_other_mapping_beats_lemma1(self, small_app, small_platform):
        """Lemma 1: the single-fastest-processor mapping minimises the latency."""
        from repro.exact.brute_force import enumerate_interval_mappings

        best = optimal_latency(small_app, small_platform)
        for mapping in enumerate_interval_mappings(small_app, small_platform):
            assert latency(small_app, small_platform, mapping) >= best - 1e-9


class TestPeriodLowerBound:
    def test_lower_bound_below_all_mappings(self, small_app, small_platform):
        from repro.exact.brute_force import enumerate_interval_mappings

        bound = period_lower_bound(small_app, small_platform)
        for mapping in enumerate_interval_mappings(small_app, small_platform):
            assert period(small_app, small_platform, mapping) >= bound - 1e-9

    def test_lower_bound_components(self):
        app = PipelineApplication([100.0, 1.0], [0.0, 0.0, 0.0])
        platform = Platform([10.0, 1.0], 10.0)
        # heaviest stage on the fastest processor dominates here
        assert period_lower_bound(app, platform) == pytest.approx(10.0)


class TestValidationErrors:
    def test_period_rejects_invalid_mapping(self, small_app, small_platform):
        mapping = IntervalMapping([(0, 2)], [0])  # only 3 of the 4 stages
        with pytest.raises(InvalidMappingError):
            period(small_app, small_platform, mapping)
