"""Unit tests for the shared splitting engine."""

from __future__ import annotations

import pytest

from repro.core.application import PipelineApplication
from repro.core.costs import evaluate
from repro.core.exceptions import InvalidPlatformError
from repro.core.platform import Platform
from repro.heuristics.engine import SelectionRule, SplittingState
from tests.conftest import random_instance


class TestInitialState:
    def test_starts_on_fastest_processor(self, small_app, small_platform):
        state = SplittingState(small_app, small_platform)
        assert state.n_intervals == 1
        assert state.processors == [small_platform.fastest_processor]
        ev = evaluate(small_app, small_platform, state.mapping())
        assert state.period == pytest.approx(ev.period)
        assert state.latency == pytest.approx(ev.latency)

    def test_unused_processor_order(self, small_platform, small_app):
        state = SplittingState(small_app, small_platform)
        assert state.next_unused(5) == [1, 2]
        assert state.n_unused == 2

    def test_custom_processor_order(self, small_app, small_platform):
        state = SplittingState(small_app, small_platform, processor_order=[2, 0, 1])
        assert state.processors == [2]
        assert state.next_unused(2) == [0, 1]

    def test_invalid_processor_order(self, small_app, small_platform):
        with pytest.raises(InvalidPlatformError):
            SplittingState(small_app, small_platform, processor_order=[0, 0, 1])
        with pytest.raises(InvalidPlatformError):
            SplittingState(small_app, small_platform, processor_order=[0, 7])

    def test_rejects_heterogeneous_links(self, small_app):
        platform = Platform.fully_heterogeneous(
            [1.0, 2.0, 3.0],
            [[0.0, 3.0, 1.0], [3.0, 0.0, 2.0], [1.0, 2.0, 0.0]],
        )
        with pytest.raises(InvalidPlatformError):
            SplittingState(small_app, platform)


class TestTwoWaySplit:
    def test_candidate_metrics_match_cost_model(self, small_app, small_platform):
        state = SplittingState(small_app, small_platform)
        candidate = state.best_two_way_split(0, 1, rule=SelectionRule.MONO)
        assert candidate is not None
        # applying the candidate and re-evaluating must agree with its metrics
        state.apply(candidate)
        ev = evaluate(small_app, small_platform, state.mapping())
        assert candidate.new_period == pytest.approx(ev.period)
        assert candidate.new_latency == pytest.approx(ev.latency)

    def test_single_stage_interval_cannot_split(self, small_platform):
        app = PipelineApplication([5.0], [1.0, 1.0])
        state = SplittingState(app, small_platform)
        assert state.best_two_way_split(0, 1) is None

    def test_mono_rule_minimises_local_max(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        state = SplittingState(app, platform)
        new_proc = state.next_unused(1)[0]
        best = state.best_two_way_split(0, new_proc, rule=SelectionRule.MONO)
        assert best is not None
        # exhaustively verify no other cut/orientation has a lower local max
        iv = state.intervals[0]
        proc_j = state.processors[0]
        for cut in range(iv.start, iv.end):
            for procs in ((proc_j, new_proc), (new_proc, proc_j)):
                mapping = state.mapping().replace(
                    0, [(iv.start, cut), (cut + 1, iv.end)], procs
                )
                ev = evaluate(app, platform, mapping)
                touched = max(c.cycle_time for c in ev.interval_costs)
                assert touched >= best.local_max_cycle - 1e-9

    def test_latency_cap_filters_candidates(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        state = SplittingState(app, platform)
        new_proc = state.next_unused(1)[0]
        unconstrained = state.best_two_way_split(0, new_proc, rule=SelectionRule.MONO)
        assert unconstrained is not None
        capped = state.best_two_way_split(
            0, new_proc, rule=SelectionRule.MONO, latency_cap=state.latency
        )
        # keeping the latency at its optimum forbids every split here
        assert capped is None or capped.new_latency <= state.latency * (1 + 1e-9)

    def test_improvement_requirement(self):
        # the only other processor is so slow that handing it any stage makes
        # the period worse, so no candidate improves and None is returned
        app = PipelineApplication([100.0, 100.0], [0.0, 0.0, 0.0])
        platform = Platform.communication_homogeneous([10.0, 1.0], bandwidth=10.0)
        state = SplittingState(app, platform)
        assert state.best_two_way_split(0, 1, require_improvement=True) is None
        relaxed = state.best_two_way_split(0, 1, require_improvement=False)
        assert relaxed is not None


class TestThreeWaySplit:
    def test_requires_two_processors(self, small_app, small_platform):
        state = SplittingState(small_app, small_platform)
        with pytest.raises(ValueError):
            state.best_three_way_split(0, [1], rule=SelectionRule.MONO)

    def test_requires_three_stages(self, small_platform):
        app = PipelineApplication([5.0, 5.0], [1.0, 1.0, 1.0])
        state = SplittingState(app, small_platform)
        assert state.best_three_way_split(0, [1, 2]) is None

    def test_candidate_matches_cost_model(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        state = SplittingState(app, platform)
        pair = state.next_unused(2)
        candidate = state.best_three_way_split(0, pair, rule=SelectionRule.MONO)
        assert candidate is not None
        assert len(candidate.new_intervals) == 3
        state.apply(candidate)
        ev = evaluate(app, platform, state.mapping())
        assert candidate.new_period == pytest.approx(ev.period)
        assert candidate.new_latency == pytest.approx(ev.latency)

    def test_three_way_at_least_as_good_as_locally(self, medium_instance):
        """The best 3-way split cannot have a worse local max than forced 2-way
        splits that use only one of the two offered processors... unless no
        3-way candidate improves; in that case it returns None."""
        app, platform = medium_instance.application, medium_instance.platform
        state = SplittingState(app, platform)
        pair = state.next_unused(2)
        three = state.best_three_way_split(0, pair, rule=SelectionRule.MONO)
        if three is not None:
            assert three.improves_period


class TestApply:
    def test_apply_consumes_processors(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        state = SplittingState(app, platform)
        before_unused = state.n_unused
        candidate = state.best_two_way_split(0, state.next_unused(1)[0])
        state.apply(candidate)
        assert state.n_unused == before_unused - 1
        assert state.n_intervals == 2

    def test_repeated_splits_keep_state_consistent(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        state = SplittingState(app, platform)
        for _ in range(4):
            unused = state.next_unused(1)
            if not unused:
                break
            candidate = state.best_two_way_split(
                state.bottleneck_index, unused[0], require_improvement=False
            )
            if candidate is None:
                break
            state.apply(candidate)
            ev = evaluate(app, platform, state.mapping())
            assert state.period == pytest.approx(ev.period)
            assert state.latency == pytest.approx(ev.latency)

    def test_stale_candidate_rejected(self, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        state = SplittingState(app, platform)
        candidate = state.best_two_way_split(0, state.next_unused(1)[0])
        bogus = type(candidate)(
            interval_index=5,
            new_intervals=candidate.new_intervals,
            new_processors=candidate.new_processors,
            new_cycles=candidate.new_cycles,
            new_contributions=candidate.new_contributions,
            new_period=candidate.new_period,
            new_latency=candidate.new_latency,
            old_cycle=candidate.old_cycle,
            old_latency=candidate.old_latency,
            score=candidate.score,
        )
        with pytest.raises(ValueError):
            state.apply(bogus)


class TestRatioRule:
    def test_ratio_prefers_smaller_latency_increase(self, rng):
        """On random instances the ratio-selected split never has a larger
        Δlatency/Δperiod ratio than the mono-selected split."""
        for seed in range(5):
            app, platform = random_instance(8, 6, seed=seed)
            state = SplittingState(app, platform)
            new_proc = state.next_unused(1)[0]
            mono = state.best_two_way_split(0, new_proc, rule=SelectionRule.MONO)
            ratio = state.best_two_way_split(0, new_proc, rule=SelectionRule.RATIO)
            if mono is None or ratio is None:
                continue

            def worst_ratio(cand):
                deltas = [cand.old_cycle - c for c in cand.new_cycles]
                if any(d <= 0 for d in deltas):
                    return float("inf")
                return max(cand.delta_latency / d for d in deltas)

            assert worst_ratio(ratio) <= worst_ratio(mono) + 1e-9
