"""Tests of the low-level experiment runner."""

from __future__ import annotations

import math

import pytest

from repro.experiments.runner import (
    aggregate_runs,
    reference_latency_range,
    reference_period_range,
    run_heuristic,
)
from repro.generators.experiments import experiment_config, generate_instances
from repro.heuristics import get_heuristic


@pytest.fixture(scope="module")
def instances():
    cfg = experiment_config("E1", 8, 6, n_instances=6)
    return generate_instances(cfg, seed=0)


class TestRunHeuristic:
    def test_fixed_period_runs(self, instances):
        runs = run_heuristic(get_heuristic("H1"), instances, threshold=5.0)
        assert len(runs) == len(instances)
        for run in runs:
            assert run.heuristic == "Sp mono P"
            assert run.threshold == 5.0
            assert run.feasible == run.result.feasible

    def test_fixed_latency_runs(self, instances):
        runs = run_heuristic(get_heuristic("H5"), instances, threshold=50.0)
        for run in runs:
            assert run.result.objective.endswith("fixed-latency")

    def test_instance_indices_preserved(self, instances):
        runs = run_heuristic(get_heuristic("H1"), instances, threshold=5.0)
        assert [r.instance_index for r in runs] == [i.index for i in instances]


class TestAggregation:
    def test_aggregate_counts_and_means(self, instances):
        runs = run_heuristic(get_heuristic("H1"), instances, threshold=8.0)
        stats = aggregate_runs(runs)
        assert stats.n_instances == len(instances)
        assert 0 <= stats.n_feasible <= stats.n_instances
        assert 0.0 <= stats.feasible_fraction <= 1.0
        if stats.n_feasible:
            feasible = [r.result for r in runs if r.feasible]
            expected_period = sum(r.period for r in feasible) / len(feasible)
            assert stats.mean_period == pytest.approx(expected_period)

    def test_aggregate_all_infeasible_gives_nan(self, instances):
        runs = run_heuristic(get_heuristic("H1"), instances, threshold=1e-9)
        stats = aggregate_runs(runs)
        assert stats.n_feasible == 0
        assert math.isnan(stats.mean_period)
        assert stats.feasible_fraction == 0.0

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])


class TestReferenceRanges:
    def test_period_range_is_ordered_and_positive(self, instances):
        lo, hi = reference_period_range(instances)
        assert 0 < lo <= hi

    def test_latency_range_is_ordered_and_contains_opt(self, instances):
        lo, hi = reference_latency_range(instances)
        assert 0 < lo < hi
        # the low end is the average optimal latency: every heuristic run with
        # that bound must be feasible on at least one instance
        runs = run_heuristic(get_heuristic("H5"), instances, threshold=hi)
        assert any(r.feasible for r in runs)
