"""Tests of the fixed-latency heuristics (H5 Sp-mono-L, H6 Sp-bi-L)."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate, interval_cycle_time, optimal_latency
from repro.core.exceptions import ConfigurationError
from repro.core.mapping import Interval
from repro.heuristics import SplittingBiLatency, SplittingMonoLatency
from tests.conftest import random_instance

FIXED_LATENCY_HEURISTICS = [SplittingMonoLatency, SplittingBiLatency]


@pytest.fixture(params=FIXED_LATENCY_HEURISTICS, ids=lambda cls: cls.key)
def heuristic(request):
    return request.param()


class TestInterface:
    def test_requires_latency_bound(self, heuristic, small_app, small_platform):
        with pytest.raises(ConfigurationError):
            heuristic.run(small_app, small_platform, period_bound=10.0)
        with pytest.raises(ConfigurationError):
            heuristic.run(small_app, small_platform)
        with pytest.raises(ConfigurationError):
            heuristic.run(small_app, small_platform, latency_bound=0.0)

    def test_result_metrics_match_mapping(self, heuristic, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        bound = optimal_latency(app, platform) * 1.5
        result = heuristic.run(app, platform, latency_bound=bound)
        ev = evaluate(app, platform, result.mapping)
        assert result.period == pytest.approx(ev.period)
        assert result.latency == pytest.approx(ev.latency)


class TestFeasibility:
    def test_feasible_iff_bound_above_optimal_latency(self, heuristic, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        opt = optimal_latency(app, platform)
        assert heuristic.run(app, platform, latency_bound=opt * 1.0001).feasible
        assert not heuristic.run(app, platform, latency_bound=opt * 0.9).feasible

    def test_failure_keeps_lemma1_mapping(self, heuristic, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        result = heuristic.run(app, platform, latency_bound=0.5)
        assert not result.feasible
        assert result.n_splits == 0
        assert result.mapping.n_intervals == 1

    def test_latency_constraint_always_respected_when_feasible(self, heuristic):
        for seed in range(4):
            app, platform = random_instance(12, 8, seed=seed)
            bound = optimal_latency(app, platform) * 1.8
            result = heuristic.run(app, platform, latency_bound=bound)
            assert result.feasible
            assert result.latency <= bound * (1 + 1e-9) + 1e-12


class TestPeriodImprovement:
    def test_period_improves_with_looser_latency(self, heuristic):
        """A larger latency budget can only help the reachable period."""
        app, platform = random_instance(15, 10, seed=11)
        opt = optimal_latency(app, platform)
        tight = heuristic.run(app, platform, latency_bound=opt * 1.05)
        loose = heuristic.run(app, platform, latency_bound=opt * 3.0)
        assert loose.period <= tight.period + 1e-9

    def test_history_periods_non_increasing(self, heuristic):
        for seed in range(3):
            app, platform = random_instance(10, 6, seed=seed)
            bound = optimal_latency(app, platform) * 2.0
            result = heuristic.run(app, platform, latency_bound=bound)
            periods = [p for p, _ in result.history]
            assert all(b <= a + 1e-9 for a, b in zip(periods, periods[1:]))

    def test_exactly_optimal_latency_bound_gives_single_interval(self, heuristic, medium_instance):
        """With the bound exactly at the optimum no split can stay within it
        (any split adds at least one communication or a slower processor)."""
        app, platform = medium_instance.application, medium_instance.platform
        opt = optimal_latency(app, platform)
        result = heuristic.run(app, platform, latency_bound=opt)
        assert result.feasible
        assert result.latency == pytest.approx(opt)

    def test_period_never_exceeds_initial_cycle(self, heuristic):
        for seed in range(3):
            app, platform = random_instance(10, 6, seed=seed)
            whole = Interval(0, app.n_stages - 1)
            start = interval_cycle_time(app, platform, whole, platform.fastest_processor)
            bound = optimal_latency(app, platform) * 2.5
            result = heuristic.run(app, platform, latency_bound=bound)
            assert result.period <= start + 1e-9


class TestRelativeBehaviour:
    def test_mono_reaches_period_at_least_as_low_as_bi_or_close(self):
        """Not a theorem, but both variants must stay within the latency bound
        and produce valid mappings on a batch of random instances."""
        for seed in range(5):
            app, platform = random_instance(12, 10, seed=seed)
            bound = optimal_latency(app, platform) * 2.0
            mono = SplittingMonoLatency().run(app, platform, latency_bound=bound)
            bi = SplittingBiLatency().run(app, platform, latency_bound=bound)
            for result in (mono, bi):
                result.mapping.validate(app, platform)
                assert result.latency <= bound * (1 + 1e-9)

    def test_same_failure_threshold_for_both(self):
        """Paper, Section 5.2.1: Sp mono L and Sp bi L share failure thresholds."""
        for seed in range(5):
            app, platform = random_instance(10, 6, seed=seed)
            opt = optimal_latency(app, platform)
            for factor, expected in ((0.99, False), (1.01, True)):
                mono = SplittingMonoLatency().run(
                    app, platform, latency_bound=opt * factor
                )
                bi = SplittingBiLatency().run(app, platform, latency_bound=opt * factor)
                assert mono.feasible == bi.feasible == expected
