"""Tests of the vectorized batch cost kernel (``evaluate_batch``).

The contract is exact parity with the scalar path: for any valid mapping the
batched period/latency must match :func:`repro.core.costs.evaluate` within
1e-9 (in practice they agree to a few ulps, since the kernel performs the
same floating-point operations on flat arrays).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import (
    BatchEvaluation,
    evaluate,
    evaluate_batch,
    interval_time_components,
    latency_batch,
    period_batch,
)
from repro.core.exceptions import InvalidMappingError
from repro.core.mapping import IntervalMapping
from repro.core.platform import Platform
from repro.exact.brute_force import enumerate_interval_mappings
from repro.generators.experiments import experiment_config, generate_instances

_REL_TOL = 1e-9


# ----------------------------------------------------------------------------- #
# strategies
# ----------------------------------------------------------------------------- #
positive_floats = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
sizes = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def instances_with_mappings(draw, max_stages: int = 10, max_procs: int = 6):
    """A random application/platform pair plus a batch of valid mappings."""
    from repro.core.application import PipelineApplication

    n = draw(st.integers(min_value=1, max_value=max_stages))
    works = draw(st.lists(positive_floats, min_size=n, max_size=n))
    comms = draw(st.lists(sizes, min_size=n + 1, max_size=n + 1))
    app = PipelineApplication(works, comms)

    p = draw(st.integers(min_value=1, max_value=max_procs))
    speeds = draw(
        st.lists(st.integers(min_value=1, max_value=20), min_size=p, max_size=p)
    )
    bandwidth = draw(st.floats(min_value=1.0, max_value=50.0))
    platform = Platform.communication_homogeneous(
        [float(s) for s in speeds], bandwidth
    )

    n_mappings = draw(st.integers(min_value=1, max_value=5))
    mappings = []
    for _ in range(n_mappings):
        m = draw(st.integers(min_value=1, max_value=min(n, p)))
        boundaries = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 2),
                    min_size=m - 1,
                    max_size=m - 1,
                    unique=True,
                )
            )
        ) if m > 1 else []
        procs = draw(st.permutations(list(range(p))))[:m]
        mappings.append(IntervalMapping.from_boundaries(boundaries, procs, n))
    return app, platform, mappings


# ----------------------------------------------------------------------------- #
# parity with the scalar path
# ----------------------------------------------------------------------------- #
class TestScalarParity:
    @given(instances_with_mappings())
    @settings(max_examples=120, deadline=None)
    def test_batched_matches_scalar_within_1e9(self, case):
        """Property: batched results match scalar evaluate() within 1e-9."""
        app, platform, mappings = case
        batch = evaluate_batch(app, platform, mappings)
        assert batch.n_mappings == len(mappings)
        for i, mapping in enumerate(mappings):
            scalar = evaluate(app, platform, mapping)
            assert batch.periods[i] == pytest.approx(scalar.period, rel=_REL_TOL)
            assert batch.latencies[i] == pytest.approx(scalar.latency, rel=_REL_TOL)

    def test_parity_over_full_enumeration(self):
        """Every mapping of a full enumeration agrees with the scalar path."""
        config = experiment_config("E2", 7, 5, n_instances=2)
        for inst in generate_instances(config, seed=13):
            app, platform = inst.application, inst.platform
            mappings = list(enumerate_interval_mappings(app, platform))
            batch = evaluate_batch(app, platform, mappings, validate=False)
            for i in (0, len(mappings) // 3, len(mappings) // 2, len(mappings) - 1):
                scalar = evaluate(app, platform, mappings[i])
                assert batch.periods[i] == pytest.approx(scalar.period, rel=_REL_TOL)
                assert batch.latencies[i] == pytest.approx(scalar.latency, rel=_REL_TOL)

    def test_parity_on_heterogeneous_platform(self):
        """The kernel handles per-link bandwidths like the scalar path."""
        rng = np.random.default_rng(29)
        p = 5
        mat = rng.uniform(2.0, 20.0, size=(p, p))
        mat = (mat + mat.T) / 2.0
        platform = Platform.fully_heterogeneous(
            rng.uniform(1.0, 10.0, p),
            mat,
            input_bandwidth=5.0,
            output_bandwidth=7.0,
        )
        config = experiment_config("E2", 6, 5, n_instances=1)
        app = generate_instances(config, seed=17)[0].application
        mappings = list(enumerate_interval_mappings(app, platform))
        batch = evaluate_batch(app, platform, mappings)
        for i, mapping in enumerate(mappings):
            scalar = evaluate(app, platform, mapping)
            assert batch.periods[i] == pytest.approx(scalar.period, rel=_REL_TOL)
            assert batch.latencies[i] == pytest.approx(scalar.latency, rel=_REL_TOL)

    def test_zero_communication_sizes(self):
        """delta = 0 boundaries cost nothing in both paths."""
        from repro.core.application import PipelineApplication

        app = PipelineApplication([3.0, 5.0, 2.0], [0.0, 0.0, 4.0, 0.0])
        platform = Platform.communication_homogeneous([2.0, 1.0], bandwidth=4.0)
        mappings = [
            IntervalMapping([(0, 1), (2, 2)], [0, 1]),
            IntervalMapping.single_processor(3, 0),
        ]
        batch = evaluate_batch(app, platform, mappings)
        for i, mapping in enumerate(mappings):
            scalar = evaluate(app, platform, mapping)
            assert batch.periods[i] == pytest.approx(scalar.period, rel=_REL_TOL)
            assert batch.latencies[i] == pytest.approx(scalar.latency, rel=_REL_TOL)


# ----------------------------------------------------------------------------- #
# API surface
# ----------------------------------------------------------------------------- #
class TestBatchApi:
    def test_empty_batch(self, small_app, small_platform):
        batch = evaluate_batch(small_app, small_platform, [])
        assert batch.n_mappings == 0
        assert len(batch) == 0
        assert batch.points() == []

    def test_wrappers_match_evaluate_batch(self, small_app, small_platform):
        mappings = [
            IntervalMapping.single_processor(small_app.n_stages, 0),
            IntervalMapping([(0, 1), (2, 3)], [0, 1]),
        ]
        batch = evaluate_batch(small_app, small_platform, mappings)
        assert np.array_equal(
            period_batch(small_app, small_platform, mappings), batch.periods
        )
        assert np.array_equal(
            latency_batch(small_app, small_platform, mappings), batch.latencies
        )

    def test_points_accessors(self, small_app, small_platform):
        mappings = [IntervalMapping.single_processor(small_app.n_stages, 0)]
        batch = evaluate_batch(small_app, small_platform, mappings)
        scalar = evaluate(small_app, small_platform, mappings[0])
        assert batch.point(0) == pytest.approx((scalar.period, scalar.latency))
        assert batch.points()[0] == batch.point(0)

    def test_validation_rejects_mismatched_mapping(self, small_app, small_platform):
        wrong = IntervalMapping.single_processor(small_app.n_stages + 1, 0)
        with pytest.raises(InvalidMappingError):
            evaluate_batch(small_app, small_platform, [wrong])

    def test_validation_can_be_disabled(self, small_app, small_platform):
        mappings = [IntervalMapping.single_processor(small_app.n_stages, 0)]
        batch = evaluate_batch(small_app, small_platform, mappings, validate=False)
        assert batch.n_mappings == 1

    def test_result_arrays_are_read_only(self, small_app, small_platform):
        mappings = [IntervalMapping.single_processor(small_app.n_stages, 0)]
        batch = evaluate_batch(small_app, small_platform, mappings)
        with pytest.raises(ValueError):
            batch.periods[0] = 0.0

    def test_batch_evaluation_dataclass(self):
        batch = BatchEvaluation(
            periods=np.array([1.0, 2.0]), latencies=np.array([3.0, 4.0])
        )
        assert batch.n_mappings == 2
        assert batch.points() == [(1.0, 3.0), (2.0, 4.0)]


# ----------------------------------------------------------------------------- #
# shared kernel
# ----------------------------------------------------------------------------- #
class TestIntervalTimeComponents:
    def test_scalar_inputs_match_hand_computation(self):
        prefix = np.array([0.0, 4.0, 6.0, 12.0, 20.0])
        comm = np.array([10.0, 4.0, 6.0, 2.0, 10.0])
        inp, work, out = interval_time_components(
            prefix, comm, 1, 2, 2.0,
            bandwidth=10.0, input_bandwidth=5.0, output_bandwidth=2.0, n_stages=4,
        )
        # interval [1, 2]: reads delta_1 over b, computes (w_1 + w_2)/2,
        # writes delta_3 over b (neither boundary touches the outside world)
        assert float(inp) == pytest.approx(4.0 / 10.0)
        assert float(work) == pytest.approx((6.0 + 6.0 - 4.0) / 2.0)
        assert float(out) == pytest.approx(2.0 / 10.0)

    def test_boundary_intervals_use_io_bandwidths(self):
        prefix = np.array([0.0, 4.0, 6.0])
        comm = np.array([10.0, 4.0, 8.0])
        inp, _, _ = interval_time_components(
            prefix, comm, 0, 0, 1.0,
            bandwidth=10.0, input_bandwidth=5.0, output_bandwidth=2.0, n_stages=2,
        )
        _, _, out = interval_time_components(
            prefix, comm, 1, 1, 1.0,
            bandwidth=10.0, input_bandwidth=5.0, output_bandwidth=2.0, n_stages=2,
        )
        assert float(inp) == pytest.approx(10.0 / 5.0)   # delta_0 / b_in
        assert float(out) == pytest.approx(8.0 / 2.0)    # delta_n / b_out

    def test_array_inputs_broadcast(self):
        prefix = np.array([0.0, 1.0, 3.0, 6.0])
        comm = np.array([1.0, 2.0, 3.0, 4.0])
        starts = np.array([0, 1])
        ends = np.array([0, 2])
        inp, work, out = interval_time_components(
            prefix, comm, starts, ends, 2.0,
            bandwidth=10.0, input_bandwidth=10.0, output_bandwidth=10.0, n_stages=3,
        )
        assert inp.shape == work.shape == out.shape == (2,)
        assert work[1] == pytest.approx((6.0 - 1.0) / 2.0)
