"""Unit tests for :mod:`repro.utils` (rng, validation, tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_series, format_table
from repro.utils.validation import check_non_negative, check_positive, check_probability


class TestRng:
    def test_ensure_rng_from_int_is_reproducible(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(3)
        assert ensure_rng(gen) is gen

    def test_spawn_rngs_independent_and_stable(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(11, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(11, 5)[:3]]
        assert first == second  # extending the stream keeps the prefix

    def test_spawn_rngs_distinct_streams(self):
        values = [g.integers(0, 10**9) for g in spawn_rngs(0, 10)]
        assert len(set(values)) > 1

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(5), 2)
        assert len(children) == 2


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2.5, "x") == 2.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "x") == 0.5
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValueError):
                check_probability(bad, "x")


class TestTables:
    def test_format_table_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.2345], ["bbbb", 2.0]],
            precision=2,
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.23" in text and "2.00" in text
        # header separator present
        assert set(lines[2]) <= {"-", "+"}

    def test_format_table_handles_ints_and_strings(self):
        text = format_table(["k", "v"], [["x", 3], ["y", "z"]])
        assert "x" in text and "3" in text and "z" in text

    def test_format_series_with_points(self):
        text = format_series({"H1": [(1.0, 2.0), (3.0, 4.0)]}, title="fig")
        assert "fig" in text
        assert "[H1]" in text
        assert "(1.000, 2.000)" in text

    def test_format_series_empty_series(self):
        text = format_series({"H1": []})
        assert "no feasible points" in text
