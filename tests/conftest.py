"""Shared pytest fixtures.

The ``src`` directory is added to ``sys.path`` as a fallback so the test
suite runs even when the package has not been installed (offline environments
without the ``wheel`` package cannot always run ``pip install -e .``).
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

import numpy as np
import pytest

from repro.core.application import PipelineApplication
from repro.core.mapping import IntervalMapping
from repro.core.platform import Platform
from repro.generators.experiments import experiment_config, generate_instances


@pytest.fixture
def small_app() -> PipelineApplication:
    """A 4-stage pipeline with hand-checkable numbers."""
    return PipelineApplication(
        works=[4.0, 2.0, 6.0, 8.0], comm_sizes=[10.0, 4.0, 6.0, 2.0, 10.0]
    )


@pytest.fixture
def small_platform() -> Platform:
    """A 3-processor communication-homogeneous platform (b = 10)."""
    return Platform.communication_homogeneous([4.0, 2.0, 1.0], bandwidth=10.0)


@pytest.fixture
def single_interval_mapping(small_app, small_platform) -> IntervalMapping:
    """Everything on the fastest processor (the Lemma 1 mapping)."""
    return IntervalMapping.single_processor(
        small_app.n_stages, small_platform.fastest_processor
    )


@pytest.fixture
def two_interval_mapping() -> IntervalMapping:
    """Stages [0,1] on P1 and [2,3] on P2 (for the small_app fixture)."""
    return IntervalMapping([(0, 1), (2, 3)], [0, 1])


@pytest.fixture
def medium_instance():
    """One deterministic E1-style instance (10 stages, 10 processors)."""
    config = experiment_config("E1", 10, 10, n_instances=1)
    return generate_instances(config, seed=42)[0]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_instance(
    n_stages: int, n_processors: int, seed: int, family: str = "E2"
) -> tuple[PipelineApplication, Platform]:
    """Helper used by several test modules to get a random instance."""
    config = experiment_config(family, n_stages, n_processors, n_instances=1)
    instance = generate_instances(config, seed=seed)[0]
    return instance.application, instance.platform
