"""Unit tests for Hetero-1D-Partition solvers (Section 3 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chains.heterogeneous import (
    hetero_best_of_orders,
    hetero_exact_bisect,
    hetero_exact_dp,
    hetero_fixed_order,
    hetero_lower_bound,
    normalized_bottleneck,
)
from repro.chains.homogeneous import dp_optimal


class TestNormalizedBottleneck:
    def test_hand_computed(self):
        value = normalized_bottleneck(
            [4, 4, 2], [2, 1], intervals=[(0, 1), (2, 2)], processors=[0, 1]
        )
        assert value == pytest.approx(max(8 / 2, 2 / 1))

    def test_lower_bound_below_exact(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 8))
            p = int(rng.integers(1, 4))
            values = rng.integers(1, 10, size=n).astype(float)
            speeds = rng.integers(1, 5, size=p).astype(float)
            exact = hetero_exact_dp(values, speeds)
            assert hetero_lower_bound(values, speeds) <= exact.bottleneck + 1e-9

    def test_lower_bound_empty(self):
        assert hetero_lower_bound([], [1.0]) == 0.0


class TestExactDp:
    def test_simple_instance(self):
        # values [6, 2], speeds [3, 1]: put 6 on the fast one and 2 on the slow
        result = hetero_exact_dp([6, 2], [3, 1])
        assert result.bottleneck == pytest.approx(2.0)
        assert result.covers(2)

    def test_single_processor(self):
        result = hetero_exact_dp([1, 2, 3], [2])
        assert result.bottleneck == pytest.approx(3.0)

    def test_reduces_to_homogeneous_with_unit_speeds(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 9))
            p = int(rng.integers(1, 4))
            values = rng.integers(1, 10, size=n).astype(float)
            hom = dp_optimal(values, p)
            het = hetero_exact_dp(values, np.ones(p))
            assert het.bottleneck == pytest.approx(hom.bottleneck)

    def test_assignment_is_valid(self, rng):
        values = rng.integers(1, 10, size=7).astype(float)
        speeds = rng.integers(1, 6, size=3).astype(float)
        result = hetero_exact_dp(values, speeds)
        assert result.covers(7)
        assert result.processors is not None
        assert len(set(result.processors)) == len(result.processors)
        assert normalized_bottleneck(
            values, speeds, result.intervals, result.processors
        ) == pytest.approx(result.bottleneck)

    def test_guards(self):
        with pytest.raises(ValueError):
            hetero_exact_dp([1], [])
        with pytest.raises(ValueError):
            hetero_exact_dp([1], np.ones(25))
        assert hetero_exact_dp([], [1.0]).bottleneck == 0.0


class TestExactBisect:
    def test_matches_exact_dp(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 10))
            p = int(rng.integers(1, 5))
            values = rng.integers(1, 12, size=n).astype(float)
            speeds = rng.integers(1, 6, size=p).astype(float)
            dp = hetero_exact_dp(values, speeds)
            bis = hetero_exact_bisect(values, speeds)
            assert bis.bottleneck == pytest.approx(dp.bottleneck, rel=1e-6)
            assert bis.covers(n)

    def test_guards(self):
        with pytest.raises(ValueError):
            hetero_exact_bisect([1], [])
        assert hetero_exact_bisect([], [1.0]).bottleneck == 0.0


class TestFixedOrderHeuristic:
    def test_valid_solution(self, rng):
        for _ in range(15):
            n = int(rng.integers(1, 20))
            p = int(rng.integers(1, 6))
            values = rng.uniform(0.5, 10.0, size=n)
            speeds = rng.integers(1, 20, size=p).astype(float)
            result = hetero_fixed_order(values, speeds)
            assert result.covers(n)
            assert result.processors is not None
            assert normalized_bottleneck(
                values, speeds, result.intervals, result.processors
            ) == pytest.approx(result.bottleneck)

    def test_never_beats_exact(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 9))
            p = int(rng.integers(1, 4))
            values = rng.integers(1, 10, size=n).astype(float)
            speeds = rng.integers(1, 6, size=p).astype(float)
            exact = hetero_exact_dp(values, speeds)
            heuristic = hetero_fixed_order(values, speeds)
            assert heuristic.bottleneck >= exact.bottleneck - 1e-9

    def test_explicit_order_is_respected(self):
        values = [4.0, 4.0]
        speeds = [4.0, 1.0]
        fast_first = hetero_fixed_order(values, speeds, order=[0, 1])
        slow_first = hetero_fixed_order(values, speeds, order=[1, 0])
        assert fast_first.bottleneck <= slow_first.bottleneck + 1e-9

    def test_empty_values(self):
        assert hetero_fixed_order([], [1.0, 2.0]).bottleneck == 0.0

    def test_no_speeds_rejected(self):
        with pytest.raises(ValueError):
            hetero_fixed_order([1.0], [])


class TestBestOfOrders:
    def test_at_least_as_good_as_descending(self, rng):
        for _ in range(8):
            n = int(rng.integers(2, 15))
            values = rng.uniform(0.5, 10.0, size=n)
            speeds = rng.integers(1, 20, size=4).astype(float)
            single = hetero_fixed_order(values, speeds)
            multi = hetero_best_of_orders(values, speeds, n_random_orders=3, seed=0)
            assert multi.bottleneck <= single.bottleneck + 1e-9

    def test_custom_orders(self):
        result = hetero_best_of_orders([3.0, 1.0], [1.0, 3.0], orders=[[1, 0]])
        assert result.bottleneck == pytest.approx(1.0)

    def test_empty_orders_rejected(self):
        with pytest.raises(ValueError):
            hetero_best_of_orders([1.0], [1.0], orders=[])
