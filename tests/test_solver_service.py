"""The batch solve service: dedupe, memoise, shard, back-fill — bytes equal.

:func:`repro.solvers.service.solve_many` sits between the experiment
drivers and the registry, so its contract is the repository's determinism
contract: the returned *solutions* are byte-identical (through
``SolveResult.identity()``)

* to running every solver directly, instance by instance;
* at any ``workers=`` / ``batch_size=`` value;
* with a cold cache, a warm cache, a shared on-disk cache or none at all.

On top of that it must do *less work*: repeated instances are solved once,
and warm caches solve nothing.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cache import SolveCache
from repro.experiments.failure import failure_thresholds
from repro.experiments.sweep import run_sweep, sweep_results_equal
from repro.generators.experiments import experiment_config, generate_instances
from repro.scenarios.differential import differential_check
from repro.solvers.registry import get_solver
from repro.solvers.service import as_instance_pair, solve_many


@pytest.fixture(scope="module")
def config():
    return experiment_config("E2", 6, 5, n_instances=5)


@pytest.fixture(scope="module")
def instances(config):
    return generate_instances(config, seed=13)


def _identities(outcome):
    return [pickle.dumps(r.identity()) for row in outcome.results for r in row]


class TestShapes:
    def test_as_instance_pair_accepts_records_and_tuples(self, instances):
        inst = instances[0]
        assert as_instance_pair(inst) == (inst.application, inst.platform)
        assert as_instance_pair((inst.application, inst.platform)) == (
            inst.application,
            inst.platform,
        )

    def test_results_are_instance_major(self, instances):
        outcome = solve_many(
            instances, ["H1", "H5"], period_bound=8.0, latency_bound=40.0
        )
        assert outcome.solvers == ("Sp mono P", "Sp mono L")
        assert len(outcome.results) == len(instances)
        assert all(len(row) == 2 for row in outcome.results)
        assert outcome.for_solver(0) == tuple(row[0] for row in outcome.results)
        for row in outcome.results:
            assert row[0].solver == "Sp mono P"
            assert row[1].solver == "Sp mono L"

    def test_empty_stream(self):
        outcome = solve_many([], ["H1"], period_bound=8.0)
        assert outcome.results == ()
        assert outcome.stats.n_tasks == 0


class TestAgainstDirectRuns:
    def test_matches_per_instance_solver_runs(self, instances):
        outcome = solve_many(instances, ["H1"], period_bound=8.0)
        direct = [
            get_solver("H1").run(i.application, i.platform, period_bound=8.0)
            for i in instances
        ]
        assert [r[0].identity() for r in outcome.results] == [
            d.identity() for d in direct
        ]


class TestDedupe:
    def test_repeated_instances_are_solved_once(self, instances):
        stream = list(instances) * 3
        outcome = solve_many(stream, ["H1"], period_bound=8.0)
        stats = outcome.stats
        assert stats.n_tasks == 3 * len(instances)
        assert stats.n_unique == len(instances)
        assert stats.n_deduplicated == 2 * len(instances)
        assert stats.n_solved == len(instances)
        # duplicates point at byte-identical results
        n = len(instances)
        for i in range(n):
            assert (
                outcome.results[i][0].identity()
                == outcome.results[i + n][0].identity()
                == outcome.results[i + 2 * n][0].identity()
            )

    def test_dedupe_is_by_numbers_not_by_name(self, instances):
        from repro.core.application import PipelineApplication

        inst = instances[0]
        clone = PipelineApplication(
            inst.application.works, inst.application.comm_sizes, name="clone"
        )
        stream = [inst, (clone, inst.platform)]
        outcome = solve_many(stream, ["H1"], period_bound=8.0)
        assert outcome.stats.n_unique == 1


class TestDeterminism:
    def test_workers_byte_identical(self, instances):
        stream = list(instances) * 2
        serial = solve_many(
            stream, ["H1", "H5"], period_bound=8.0, latency_bound=40.0
        )
        pooled = solve_many(
            stream,
            ["H1", "H5"],
            period_bound=8.0,
            latency_bound=40.0,
            workers=3,
            batch_size=2,
        )
        assert _identities(serial) == _identities(pooled)

    def test_cold_vs_warm_byte_identical(self, instances):
        stream = list(instances) * 2
        cache = SolveCache()
        cold = solve_many(stream, ["H1"], period_bound=8.0, cache=cache)
        warm = solve_many(stream, ["H1"], period_bound=8.0, cache=cache)
        assert _identities(cold) == _identities(warm)
        assert cold.stats.n_solved == len(instances)
        assert warm.stats.n_solved == 0
        assert warm.stats.n_cache_hits == len(instances)
        assert all(r.cache_hit for row in warm.results for r in row)

    def test_disk_cache_spans_service_calls(self, tmp_path, instances):
        cold = solve_many(
            instances,
            ["H1"],
            period_bound=8.0,
            cache=SolveCache(directory=tmp_path / "store"),
        )
        warm = solve_many(
            instances,
            ["H1"],
            period_bound=8.0,
            cache=SolveCache(directory=tmp_path / "store"),
        )
        assert warm.stats.n_solved == 0
        assert _identities(cold) == _identities(warm)


class TestDriversThroughTheService:
    def test_sweep_identical_with_and_without_cache(self, config, instances):
        plain = run_sweep(config, n_thresholds=4, instances=instances)
        cached = run_sweep(
            config, n_thresholds=4, instances=instances, cache=SolveCache()
        )
        assert sweep_results_equal(plain, cached)

    def test_failure_thresholds_identical_with_and_without_cache(
        self, config, instances
    ):
        plain = failure_thresholds(config, instances=instances)
        cached = failure_thresholds(
            config, instances=instances, cache=SolveCache()
        )
        assert [(r.heuristic, r.per_instance) for r in plain] == [
            (r.heuristic, r.per_instance) for r in cached
        ]

    def test_differential_report_identical_with_warm_cache(self, instances):
        inst = instances[0]
        cache = SolveCache()
        plain = differential_check(inst.application, inst.platform)
        cold = differential_check(inst.application, inst.platform, cache=cache)
        warm = differential_check(inst.application, inst.platform, cache=cache)
        assert plain == cold == warm
        assert cache.stats.hits > 0  # the warm pass reused the fan-out
