"""Unit tests for :mod:`repro.core.mapping`."""

from __future__ import annotations

import pytest

from repro.core.exceptions import InvalidMappingError
from repro.core.mapping import Interval, IntervalMapping


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(2, 5)
        assert iv.n_stages == 4
        assert len(iv) == 4
        assert 3 in iv and 6 not in iv
        assert list(iv.stages()) == [2, 3, 4, 5]

    def test_invalid_interval_rejected(self):
        with pytest.raises(InvalidMappingError):
            Interval(3, 2)
        with pytest.raises(InvalidMappingError):
            Interval(-1, 2)

    def test_split(self):
        left, right = Interval(1, 5).split(3)
        assert (left.start, left.end) == (1, 3)
        assert (right.start, right.end) == (4, 5)

    def test_split_bounds(self):
        with pytest.raises(InvalidMappingError):
            Interval(1, 5).split(5)
        with pytest.raises(InvalidMappingError):
            Interval(1, 5).split(0)
        with pytest.raises(InvalidMappingError):
            Interval(2, 2).split(2)

    def test_split3(self):
        a, b, c = Interval(0, 5).split3(1, 3)
        assert (a.start, a.end) == (0, 1)
        assert (b.start, b.end) == (2, 3)
        assert (c.start, c.end) == (4, 5)

    def test_split3_invalid_cuts(self):
        with pytest.raises(InvalidMappingError):
            Interval(0, 5).split3(3, 3)
        with pytest.raises(InvalidMappingError):
            Interval(0, 5).split3(4, 5)


class TestMappingConstruction:
    def test_valid_mapping(self):
        mapping = IntervalMapping([(0, 1), (2, 4)], [3, 1])
        assert mapping.n_intervals == 2
        assert mapping.n_stages == 5
        assert mapping.used_processors == {1, 3}

    def test_first_interval_must_start_at_zero(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(1, 2)], [0])

    def test_intervals_must_be_consecutive(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(0, 1), (3, 4)], [0, 1])
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(0, 2), (2, 4)], [0, 1])

    def test_distinct_processors_required(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(0, 1), (2, 3)], [0, 0])

    def test_processor_count_must_match(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(0, 1), (2, 3)], [0])

    def test_negative_processor_rejected(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(0, 1)], [-1])

    def test_n_stages_check(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(0, 2)], [0], n_stages=4)

    def test_n_processors_check(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(0, 2)], [5], n_processors=3)

    def test_empty_mapping_rejected(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([], [])


class TestMappingNavigation:
    def test_interval_of_stage(self):
        mapping = IntervalMapping([(0, 2), (3, 3), (4, 7)], [0, 1, 2])
        assert mapping.interval_of_stage(0) == 0
        assert mapping.interval_of_stage(2) == 0
        assert mapping.interval_of_stage(3) == 1
        assert mapping.interval_of_stage(7) == 2

    def test_interval_of_stage_out_of_range(self):
        mapping = IntervalMapping([(0, 2)], [0])
        with pytest.raises(InvalidMappingError):
            mapping.interval_of_stage(3)

    def test_processor_of_stage(self):
        mapping = IntervalMapping([(0, 2), (3, 5)], [4, 2])
        assert mapping.processor_of_stage(1) == 4
        assert mapping.processor_of_stage(5) == 2

    def test_items_and_iteration(self):
        mapping = IntervalMapping([(0, 0), (1, 2)], [1, 0])
        items = list(mapping)
        assert len(items) == len(mapping) == 2
        assert items[0][1] == 1

    def test_is_one_to_one(self):
        assert IntervalMapping([(0, 0), (1, 1)], [0, 1]).is_one_to_one
        assert not IntervalMapping([(0, 1)], [0]).is_one_to_one


class TestMappingFactories:
    def test_single_processor(self):
        mapping = IntervalMapping.single_processor(5, 2)
        assert mapping.n_intervals == 1
        assert mapping.n_stages == 5
        assert mapping.processors == (2,)

    def test_single_processor_invalid(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping.single_processor(0, 0)

    def test_one_to_one(self):
        mapping = IntervalMapping.one_to_one([3, 1, 2])
        assert mapping.n_stages == 3
        assert mapping.is_one_to_one
        assert mapping.processors == (3, 1, 2)

    def test_from_boundaries_and_back(self):
        mapping = IntervalMapping.from_boundaries([1, 3], [0, 1, 2], n_stages=6)
        assert [(iv.start, iv.end) for iv in mapping.intervals] == [
            (0, 1),
            (2, 3),
            (4, 5),
        ]
        assert mapping.boundaries() == [1, 3]


class TestReplace:
    def test_replace_splits_interval(self):
        mapping = IntervalMapping([(0, 3)], [0])
        new = mapping.replace(0, [(0, 1), (2, 3)], [0, 1])
        assert new.n_intervals == 2
        assert new.processors == (0, 1)
        # original is unchanged
        assert mapping.n_intervals == 1

    def test_replace_must_cover_interval(self):
        mapping = IntervalMapping([(0, 3)], [0])
        with pytest.raises(InvalidMappingError):
            mapping.replace(0, [(0, 1), (2, 2)], [0, 1])

    def test_replace_middle_interval(self):
        mapping = IntervalMapping([(0, 1), (2, 5), (6, 7)], [0, 1, 2])
        new = mapping.replace(1, [(2, 3), (4, 5)], [1, 3])
        assert [(iv.start, iv.end) for iv in new.intervals] == [
            (0, 1),
            (2, 3),
            (4, 5),
            (6, 7),
        ]
        assert new.processors == (0, 1, 3, 2)

    def test_replace_cannot_reuse_processor(self):
        mapping = IntervalMapping([(0, 1), (2, 5)], [0, 1])
        with pytest.raises(InvalidMappingError):
            mapping.replace(1, [(2, 3), (4, 5)], [1, 0])


class TestValidationAgainstInstances(object):
    def test_validate_ok(self, small_app, small_platform, two_interval_mapping):
        two_interval_mapping.validate(small_app, small_platform)

    def test_validate_wrong_stage_count(self, small_app, small_platform):
        mapping = IntervalMapping([(0, 2)], [0])
        with pytest.raises(InvalidMappingError):
            mapping.validate(small_app, small_platform)

    def test_validate_too_many_processors(self, small_app):
        from repro.core.platform import Platform

        tiny = Platform([1.0], 10.0)
        mapping = IntervalMapping([(0, 1), (2, 3)], [0, 1])
        with pytest.raises(InvalidMappingError):
            mapping.validate(small_app, tiny)

    def test_validate_processor_out_of_range(self, small_app, small_platform):
        mapping = IntervalMapping([(0, 3)], [7])
        with pytest.raises(InvalidMappingError):
            mapping.validate(small_app, small_platform)


class TestDunder:
    def test_equality_and_hash(self):
        a = IntervalMapping([(0, 1), (2, 3)], [0, 1])
        b = IntervalMapping([(0, 1), (2, 3)], [0, 1])
        c = IntervalMapping([(0, 2), (3, 3)], [0, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_and_describe(self):
        mapping = IntervalMapping([(0, 1), (2, 3)], [0, 1])
        assert "P1" in repr(mapping)
        text = mapping.describe()
        assert "I1" in text and "S3" in text
