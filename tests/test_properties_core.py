"""Hypothesis property tests of the core kernels and mapping invariants.

Two contracts the rest of the repository leans on:

* the vectorized batch kernels of :mod:`repro.core.costs` are *the same
  function* as the scalar evaluation — on any instance, any platform class
  and any structurally valid batch of mappings;
* :class:`repro.core.mapping.IntervalMapping` round-trips through every one
  of its alternate representations (boundaries, serialisation documents)
  and its stage-navigation helpers agree with the raw partition.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.application import PipelineApplication
from repro.core.costs import (
    evaluate,
    evaluate_batch,
    interval_cycle_time,
    interval_time_components,
)
from repro.core.mapping import Interval, IntervalMapping
from repro.core.platform import Platform
from repro.core.serialization import mapping_from_dict, mapping_to_dict

# ----------------------------------------------------------------------------- #
# strategies
# ----------------------------------------------------------------------------- #
works_values = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
comm_values = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
speed_values = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
bandwidth_values = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


@st.composite
def applications(draw, max_stages: int = 10):
    n = draw(st.integers(min_value=1, max_value=max_stages))
    works = draw(st.lists(works_values, min_size=n, max_size=n))
    comms = draw(st.lists(comm_values, min_size=n + 1, max_size=n + 1))
    return PipelineApplication(works, comms)


@st.composite
def platforms(draw, max_procs: int = 6, heterogeneous_links: bool = False):
    p = draw(st.integers(min_value=1, max_value=max_procs))
    speeds = draw(st.lists(speed_values, min_size=p, max_size=p))
    if heterogeneous_links:
        raw = draw(
            st.lists(
                st.lists(bandwidth_values, min_size=p, max_size=p),
                min_size=p,
                max_size=p,
            )
        )
        matrix = np.asarray(raw, dtype=float)
        matrix = (matrix + matrix.T) / 2.0
        np.fill_diagonal(matrix, 1.0)
        return Platform.fully_heterogeneous(
            speeds,
            matrix,
            input_bandwidth=draw(bandwidth_values),
            output_bandwidth=draw(bandwidth_values),
        )
    return Platform.communication_homogeneous(speeds, draw(bandwidth_values))


@st.composite
def mappings_for(draw, n_stages: int, n_processors: int):
    """A structurally valid interval mapping of ``n_stages`` onto ``p`` procs."""
    m = draw(st.integers(min_value=1, max_value=min(n_stages, n_processors)))
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_stages - 2),
            min_size=m - 1,
            max_size=m - 1,
            unique=True,
        )
        if m > 1
        else st.just([])
    )
    processors = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_processors - 1),
            min_size=m,
            max_size=m,
            unique=True,
        )
    )
    return IntervalMapping.from_boundaries(sorted(cuts), processors, n_stages)


@st.composite
def instances_with_mappings(draw, heterogeneous_links: bool = False, max_batch: int = 5):
    app = draw(applications())
    platform = draw(platforms(heterogeneous_links=heterogeneous_links))
    batch = draw(
        st.lists(
            mappings_for(app.n_stages, platform.n_processors),
            min_size=1,
            max_size=max_batch,
        )
    )
    return app, platform, batch


# ----------------------------------------------------------------------------- #
# batch kernel == scalar kernel
# ----------------------------------------------------------------------------- #
class TestBatchKernelEquivalence:
    @given(instances_with_mappings())
    @settings(max_examples=80, deadline=None)
    def test_batch_matches_scalar_comm_homogeneous(self, case):
        app, platform, batch = case
        result = evaluate_batch(app, platform, batch)
        for i, mapping in enumerate(batch):
            scalar = evaluate(app, platform, mapping)
            assert np.isclose(result.periods[i], scalar.period, rtol=1e-12, atol=0.0)
            assert np.isclose(result.latencies[i], scalar.latency, rtol=1e-12, atol=0.0)

    @given(instances_with_mappings(heterogeneous_links=True))
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar_heterogeneous_links(self, case):
        app, platform, batch = case
        result = evaluate_batch(app, platform, batch)
        for i, mapping in enumerate(batch):
            scalar = evaluate(app, platform, mapping)
            assert np.isclose(result.periods[i], scalar.period, rtol=1e-12, atol=0.0)
            assert np.isclose(result.latencies[i], scalar.latency, rtol=1e-12, atol=0.0)

    @given(applications(), platforms())
    @settings(max_examples=60, deadline=None)
    def test_interval_time_components_match_cycle_time(self, app, platform):
        """The broadcastable kernel equals the scalar per-interval helper on
        whole-chain intervals (the only predecessor/successor-free case both
        sides define identically)."""
        interval = Interval(0, app.n_stages - 1)
        for proc in range(platform.n_processors):
            input_time, compute_time, output_time = interval_time_components(
                app.work_prefix,
                app.comm_sizes,
                interval.start,
                interval.end,
                platform.speed(proc),
                bandwidth=platform.uniform_bandwidth,
                input_bandwidth=platform.input_bandwidth,
                output_bandwidth=platform.output_bandwidth,
                n_stages=app.n_stages,
            )
            total = float(input_time + compute_time + output_time)
            scalar = interval_cycle_time(app, platform, interval, proc)
            assert np.isclose(total, scalar, rtol=1e-12, atol=0.0)

    @given(instances_with_mappings())
    @settings(max_examples=30, deadline=None)
    def test_empty_batch_and_order(self, case):
        app, platform, batch = case
        empty = evaluate_batch(app, platform, [])
        assert len(empty) == 0
        doubled = evaluate_batch(app, platform, batch + batch)
        assert np.array_equal(doubled.periods[: len(batch)], doubled.periods[len(batch):])


# ----------------------------------------------------------------------------- #
# mapping round-trip invariants
# ----------------------------------------------------------------------------- #
class TestMappingRoundTrips:
    @given(instances_with_mappings(max_batch=1))
    @settings(max_examples=80, deadline=None)
    def test_boundaries_round_trip(self, case):
        _, _, (mapping,) = case
        rebuilt = IntervalMapping.from_boundaries(
            mapping.boundaries(), mapping.processors, mapping.n_stages
        )
        assert rebuilt == mapping
        assert hash(rebuilt) == hash(mapping)

    @given(instances_with_mappings(max_batch=1))
    @settings(max_examples=80, deadline=None)
    def test_serialization_round_trip(self, case):
        _, _, (mapping,) = case
        document = mapping_to_dict(mapping)
        assert mapping_from_dict(document) == mapping

    @given(instances_with_mappings(max_batch=1))
    @settings(max_examples=60, deadline=None)
    def test_stage_navigation_agrees_with_partition(self, case):
        app, platform, (mapping,) = case
        mapping.validate(app, platform)
        for j, (interval, proc) in enumerate(mapping.items()):
            for stage in interval.stages():
                assert mapping.interval_of_stage(stage) == j
                assert mapping.processor_of_stage(stage) == proc
        # the partition covers [0, n) exactly once
        covered = [s for iv in mapping.intervals for s in iv.stages()]
        assert covered == list(range(mapping.n_stages))
