"""Unit tests for the exhaustive interval-mapping solvers."""

from __future__ import annotations

import pytest

from repro.core.application import PipelineApplication
from repro.core.costs import evaluate, latency, optimal_latency, period
from repro.core.exceptions import InfeasibleError
from repro.core.platform import Platform
from repro.exact.brute_force import (
    brute_force_min_latency,
    brute_force_min_period,
    brute_force_pareto_front,
    enumerate_interval_mappings,
)


class TestEnumeration:
    def test_number_of_mappings(self, small_app, small_platform):
        """n=4 stages, p=3 processors: sum over m of C(3, m-1) * P(3, m)."""
        mappings = list(enumerate_interval_mappings(small_app, small_platform))
        # m=1: 1*3, m=2: 3*6, m=3: 3*6 = 3 + 18 + 18 = 39
        assert len(mappings) == 39
        assert len({m for m in mappings}) == 39  # all distinct

    def test_all_mappings_valid(self, small_app, small_platform):
        for mapping in enumerate_interval_mappings(small_app, small_platform):
            mapping.validate(small_app, small_platform)

    def test_size_guard(self):
        app = PipelineApplication.homogeneous(20)
        platform = Platform.fully_homogeneous(3)
        with pytest.raises(ValueError):
            list(enumerate_interval_mappings(app, platform))
        big_platform = Platform.fully_homogeneous(12)
        small = PipelineApplication.homogeneous(3)
        with pytest.raises(ValueError):
            list(enumerate_interval_mappings(small, big_platform))


class TestMinPeriod:
    def test_unconstrained_optimum_is_global(self, small_app, small_platform):
        mapping, ev = brute_force_min_period(small_app, small_platform)
        for other in enumerate_interval_mappings(small_app, small_platform):
            assert ev.period <= period(small_app, small_platform, other) + 1e-12

    def test_latency_constraint_respected(self, small_app, small_platform):
        bound = optimal_latency(small_app, small_platform) * 1.2
        mapping, ev = brute_force_min_period(small_app, small_platform, latency_bound=bound)
        assert ev.latency <= bound + 1e-9

    def test_infeasible_latency_bound(self, small_app, small_platform):
        with pytest.raises(InfeasibleError):
            brute_force_min_period(small_app, small_platform, latency_bound=0.1)

    def test_constrained_never_better_than_unconstrained(self, small_app, small_platform):
        _, unconstrained = brute_force_min_period(small_app, small_platform)
        bound = optimal_latency(small_app, small_platform) * 1.5
        _, constrained = brute_force_min_period(
            small_app, small_platform, latency_bound=bound
        )
        assert constrained.period >= unconstrained.period - 1e-12


class TestMinLatency:
    def test_unconstrained_matches_lemma1(self, small_app, small_platform):
        mapping, ev = brute_force_min_latency(small_app, small_platform)
        assert ev.latency == pytest.approx(optimal_latency(small_app, small_platform))
        assert mapping.n_intervals == 1

    def test_period_constraint_respected(self, small_app, small_platform):
        _, best_period = brute_force_min_period(small_app, small_platform)
        bound = best_period.period * 1.2
        mapping, ev = brute_force_min_latency(small_app, small_platform, period_bound=bound)
        assert ev.period <= bound + 1e-9
        # every other mapping respecting the bound has larger-or-equal latency
        for other in enumerate_interval_mappings(small_app, small_platform):
            if period(small_app, small_platform, other) <= bound + 1e-12:
                assert latency(small_app, small_platform, other) >= ev.latency - 1e-9

    def test_infeasible_period_bound(self, small_app, small_platform):
        with pytest.raises(InfeasibleError):
            brute_force_min_latency(small_app, small_platform, period_bound=1e-6)


class TestParetoFront:
    def test_front_points_are_non_dominated(self, small_app, small_platform):
        front = brute_force_pareto_front(small_app, small_platform)
        assert front, "the Pareto front cannot be empty"
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not a.dominates(b)

    def test_front_contains_extremes(self, small_app, small_platform):
        front = brute_force_pareto_front(small_app, small_platform)
        periods = [p.period for p in front]
        latencies = [p.latency for p in front]
        _, best_period = brute_force_min_period(small_app, small_platform)
        assert min(periods) == pytest.approx(best_period.period)
        assert min(latencies) == pytest.approx(
            optimal_latency(small_app, small_platform)
        )

    def test_payload_is_the_mapping(self, small_app, small_platform):
        front = brute_force_pareto_front(small_app, small_platform)
        for point in front:
            ev = evaluate(small_app, small_platform, point.payload)
            assert ev.period == pytest.approx(point.period)
            assert ev.latency == pytest.approx(point.latency)
