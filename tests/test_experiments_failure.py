"""Tests of the failure-threshold driver (Table 1)."""

from __future__ import annotations

import pytest

from repro.core.costs import optimal_latency
from repro.experiments.failure import failure_threshold_table, failure_thresholds
from repro.experiments.report import render_failure_table, render_failure_thresholds
from repro.generators.experiments import experiment_config, generate_instances
from repro.heuristics import get_heuristic


@pytest.fixture(scope="module")
def config():
    return experiment_config("E1", 10, 10, n_instances=8)


@pytest.fixture(scope="module")
def rows(config):
    return failure_thresholds(config, seed=0)


class TestFailureThresholds:
    def test_one_row_per_heuristic(self, rows):
        assert [r.key for r in rows] == ["H1", "H2", "H3", "H4", "H5", "H6"]

    def test_per_instance_values_positive(self, rows, config):
        for row in rows:
            assert len(row.per_instance) == config.n_instances
            assert all(v > 0 for v in row.per_instance)
            assert row.mean_threshold == pytest.approx(
                sum(row.per_instance) / len(row.per_instance)
            )

    def test_fixed_latency_thresholds_equal_optimal_latency(self, config):
        """H5 and H6 fail exactly below the Lemma 1 latency (paper Table 1 remark)."""
        instances = generate_instances(config, seed=0)
        rows = failure_thresholds(config, instances=instances)
        by_key = {r.key: r for r in rows}
        expected = [optimal_latency(i.application, i.platform) for i in instances]
        for key in ("H5", "H6"):
            assert list(by_key[key].per_instance) == pytest.approx(expected)
        assert by_key["H5"].per_instance == by_key["H6"].per_instance

    def test_threshold_is_the_feasibility_frontier(self, config):
        """Just above the reported threshold the heuristic succeeds, just below
        it fails (checked per instance for H1)."""
        instances = generate_instances(config, seed=0)
        rows = failure_thresholds(config, instances=instances)
        h1_row = next(r for r in rows if r.key == "H1")
        h1 = get_heuristic("H1")
        for instance, threshold in zip(instances, h1_row.per_instance):
            app, platform = instance.application, instance.platform
            assert h1.run(app, platform, period_bound=threshold * 1.01).feasible
            assert not h1.run(app, platform, period_bound=threshold * 0.9).feasible

    def test_sp_mono_p_has_smallest_fixed_period_threshold(self, rows):
        """Paper: Sp mono P has the smallest failure thresholds (fixed period)."""
        by_key = {r.key: r.mean_threshold for r in rows}
        assert by_key["H1"] <= by_key["H2"] + 1e-9
        assert by_key["H1"] <= by_key["H3"] + 1e-9

    def test_heuristic_subset(self, config):
        rows = failure_thresholds(config, heuristics=["H1", "H5"], seed=0)
        assert [r.key for r in rows] == ["H1", "H5"]


class TestFailureTable:
    def test_table_structure_and_growth(self):
        table = failure_threshold_table(
            "E1", stage_counts=(5, 10), n_processors=8, n_instances=5, seed=0
        )
        assert set(table) == {"H1", "H2", "H3", "H4", "H5", "H6"}
        for key, per_stage in table.items():
            assert set(per_stage) == {5, 10}
            # thresholds grow with the number of stages (more work to place)
            assert per_stage[10] >= per_stage[5] * 0.8

    def test_render_table(self):
        table = {"H1": {5: 3.0, 10: 3.3}, "H5": {5: 4.5, 10: 6.0}}
        text = render_failure_table(table, stage_counts=(5, 10), title="demo")
        assert "demo" in text and "H1" in text and "n=10" in text

    def test_render_rows(self, rows):
        text = render_failure_thresholds(rows, title="E1")
        assert "Sp mono P" in text and "H6" in text
