"""Cross-validation of the heuristics against the exact solvers.

Heuristics can never beat the exact optimum; these tests quantify and bound
the optimality gap on small instances and check the structural relations the
theory imposes (Lemma 1, NP-hard period minimisation, homogeneous special
case).
"""

from __future__ import annotations

from repro.core.application import PipelineApplication
from repro.core.costs import optimal_latency
from repro.core.exceptions import InfeasibleError
from repro.core.platform import Platform
from repro.exact.brute_force import brute_force_min_latency, brute_force_min_period
from repro.exact.dp_bitmask import dp_min_latency_for_period
from repro.exact.homogeneous_dp import homogeneous_min_period
from repro.heuristics import all_heuristics, fixed_period_heuristics, get_heuristic
from tests.conftest import random_instance


class TestAgainstBruteForce:
    def test_fixed_period_heuristics_never_beat_optimal_latency(self):
        """At any feasible threshold the heuristic latency >= exact optimum."""
        for seed in range(4):
            app, platform = random_instance(7, 4, seed=seed)
            _, best = brute_force_min_period(app, platform)
            bound = best.period * 1.4
            for heuristic in fixed_period_heuristics():
                result = heuristic.run(app, platform, period_bound=bound)
                if not result.feasible:
                    continue
                try:
                    _, exact = brute_force_min_latency(app, platform, period_bound=bound)
                except InfeasibleError:  # pragma: no cover
                    continue
                assert result.latency >= exact.latency - 1e-9

    def test_fixed_latency_heuristics_never_beat_optimal_period(self):
        for seed in range(4):
            app, platform = random_instance(7, 4, seed=seed)
            bound = optimal_latency(app, platform) * 1.6
            _, exact = brute_force_min_period(app, platform, latency_bound=bound)
            for key in ("H5", "H6"):
                result = get_heuristic(key).run(app, platform, latency_bound=bound)
                assert result.feasible
                assert result.period >= exact.period - 1e-9

    def test_heuristic_best_period_never_below_exact_best_period(self):
        for seed in range(4):
            app, platform = random_instance(7, 4, seed=seed)
            _, exact = brute_force_min_period(app, platform)
            for heuristic in fixed_period_heuristics():
                reachable = heuristic.run(app, platform, period_bound=1e-9).period
                assert reachable >= exact.period - 1e-9


class TestAgainstBitmaskDp:
    def test_optimality_gap_is_bounded_on_small_instances(self):
        """On small E2 instances H1's latency stays within a small factor of
        the exact optimum under the same period bound (sanity of the gap)."""
        gaps = []
        for seed in range(6):
            app, platform = random_instance(8, 5, seed=seed)
            h1 = get_heuristic("H1")
            reachable = h1.run(app, platform, period_bound=1e-9).period
            bound = reachable * 1.2
            result = h1.run(app, platform, period_bound=bound)
            if not result.feasible:
                continue
            _, exact_latency = dp_min_latency_for_period(app, platform, bound)
            assert result.latency >= exact_latency - 1e-9
            gaps.append(result.latency / exact_latency)
        assert gaps, "no feasible instance collected"
        assert max(gaps) < 3.0  # loose sanity bound on the optimality gap


class TestHomogeneousSpecialCase:
    def test_heuristics_match_dp_bound_on_homogeneous_platform(self):
        """On identical processors the heuristics cannot beat the polynomial DP."""
        app = PipelineApplication(
            [5.0, 3.0, 8.0, 2.0, 7.0, 4.0], [10, 4, 6, 2, 3, 5, 10]
        )
        platform = Platform.fully_homogeneous(4, speed=3.0, bandwidth=10.0)
        _, optimal_period = homogeneous_min_period(app, platform)
        for heuristic in fixed_period_heuristics():
            reachable = heuristic.run(app, platform, period_bound=1e-9).period
            assert reachable >= optimal_period - 1e-9


class TestLemma1Consistency:
    def test_every_heuristic_latency_at_least_lemma1(self):
        for seed in range(3):
            app, platform = random_instance(9, 6, seed=seed)
            opt = optimal_latency(app, platform)
            for heuristic in all_heuristics():
                if heuristic.objective.endswith("fixed-period"):
                    result = heuristic.run(app, platform, period_bound=2.0)
                else:
                    result = heuristic.run(app, platform, latency_bound=opt * 2)
                assert result.latency >= opt - 1e-9
