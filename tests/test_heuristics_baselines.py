"""Tests of the baseline heuristics (chains-to-chains partition, random)."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate
from repro.heuristics import (
    ChainsPartitionBaseline,
    RandomMappingBaseline,
    SplittingMonoPeriod,
)
from tests.conftest import random_instance


class TestChainsPartitionBaseline:
    def test_produces_valid_mappings(self):
        for seed in range(4):
            app, platform = random_instance(12, 8, seed=seed)
            result = ChainsPartitionBaseline().run(app, platform, period_bound=1e-9)
            result.mapping.validate(app, platform)
            ev = evaluate(app, platform, result.mapping)
            assert result.period == pytest.approx(ev.period)
            assert result.latency == pytest.approx(ev.latency)

    def test_feasibility_semantics(self):
        app, platform = random_instance(10, 6, seed=1)
        baseline = ChainsPartitionBaseline()
        reachable = baseline.run(app, platform, period_bound=1e-9).period
        assert baseline.run(app, platform, period_bound=reachable * 1.001).feasible
        assert not baseline.run(app, platform, period_bound=reachable * 0.9).feasible

    def test_stops_at_first_feasible_interval_count(self):
        app, platform = random_instance(10, 6, seed=2)
        loose = ChainsPartitionBaseline().run(app, platform, period_bound=1e6)
        # a huge bound is satisfied with a single interval (no partitioning)
        assert loose.mapping.n_intervals == 1

    def test_usually_behind_sp_mono_p(self):
        """The heterogeneity-aware splitting of the paper should beat the
        homogeneity-assuming baseline on most instances."""
        wins = 0
        total = 0
        for seed in range(8):
            app, platform = random_instance(15, 10, seed=seed)
            h1 = SplittingMonoPeriod().run(app, platform, period_bound=1e-9).period
            baseline = (
                ChainsPartitionBaseline().run(app, platform, period_bound=1e-9).period
            )
            total += 1
            if h1 <= baseline + 1e-9:
                wins += 1
        assert wins >= total * 0.6


class TestRandomMappingBaseline:
    def test_reproducible_and_valid(self):
        app, platform = random_instance(10, 6, seed=3)
        a = RandomMappingBaseline(n_samples=50, seed=7).run(app, platform, period_bound=5.0)
        b = RandomMappingBaseline(n_samples=50, seed=7).run(app, platform, period_bound=5.0)
        assert a.period == b.period and a.latency == b.latency
        a.mapping.validate(app, platform)

    def test_more_samples_never_hurt(self):
        app, platform = random_instance(10, 6, seed=4)
        few = RandomMappingBaseline(n_samples=5, seed=1).run(app, platform, period_bound=1e-9)
        many = RandomMappingBaseline(n_samples=200, seed=1).run(app, platform, period_bound=1e-9)
        assert many.period <= few.period + 1e-9

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            RandomMappingBaseline(n_samples=0)

    def test_random_baseline_is_not_competitive(self):
        """Sanity: on a non-trivial instance the paper's heuristic beats the
        random floor in period (this is why the heuristics matter)."""
        app, platform = random_instance(20, 10, seed=5)
        h1 = SplittingMonoPeriod().run(app, platform, period_bound=1e-9).period
        rand = RandomMappingBaseline(n_samples=100, seed=0).run(
            app, platform, period_bound=1e-9
        ).period
        assert h1 <= rand + 1e-9
