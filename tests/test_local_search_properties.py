"""Hypothesis property suite: incremental move deltas are bit-exact.

The local-search move engine (:mod:`repro.solvers.moves`) promises that the
period and latency of every incrementally evaluated candidate equal — to the
last bit, ``==`` not ``approx`` — what :func:`repro.core.costs.evaluate_batch`
computes for the moved mapping from scratch.  This suite pins that contract
on random instances drawn from **all eight scenario families** (including the
fully heterogeneous-links family, where a move dirties its neighbours'
bandwidth terms), for **every move type**, both from a fresh state and along
a chain of applied moves (the splice-and-carry path of ``MappingState.apply``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import evaluate_batch
from repro.core.mapping import IntervalMapping
from repro.scenarios.families import family_names, generate_scenarios
from repro.solvers.moves import (
    MappingState,
    MergeIntervals,
    ReassignProcessor,
    ShiftBoundary,
    SplitInterval,
    SwapProcessors,
    enumerate_moves,
    evaluate_move,
)

ALL_FAMILIES = family_names()
MOVE_TYPES = (
    ShiftBoundary,
    SwapProcessors,
    ReassignProcessor,
    MergeIntervals,
    SplitInterval,
)

#: cap on moves checked per drawn example (large-chain states enumerate
#: thousands); the deterministic coverage test below sweeps without a cap
_MOVE_CAP = 160


def _random_mapping(app, platform, rng) -> IntervalMapping:
    """A uniformly structured valid interval mapping (distinct processors)."""
    n, p = app.n_stages, platform.n_processors
    m = int(rng.integers(1, min(n, p) + 1))
    if m > 1:
        boundaries = sorted(
            int(x) for x in rng.choice(n - 1, size=m - 1, replace=False)
        )
    else:
        boundaries = []
    processors = [int(x) for x in rng.choice(p, size=m, replace=False)]
    return IntervalMapping.from_boundaries(boundaries, processors, n)


def _candidate_mapping(candidate, n_stages: int) -> IntervalMapping:
    return IntervalMapping.from_boundaries(
        candidate.ends[:-1], candidate.procs, n_stages
    )


def _assert_batch_exact(app, platform, moves, candidates):
    """Every candidate's metrics equal evaluate_batch's, bit for bit."""
    mappings = [_candidate_mapping(c, app.n_stages) for c in candidates]
    batch = evaluate_batch(app, platform, mappings)
    for move, cand, bp, bl in zip(
        moves, candidates, batch.periods, batch.latencies
    ):
        assert cand.period == bp, (
            f"{move!r}: incremental period {cand.period!r} != "
            f"batch {float(bp)!r}"
        )
        assert cand.latency == bl, (
            f"{move!r}: incremental latency {cand.latency!r} != "
            f"batch {float(bl)!r}"
        )


class TestIncrementalDeltas:
    @given(
        family=st.sampled_from(ALL_FAMILIES),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        mapping_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_delta_equals_full_reevaluation(self, family, seed, mapping_seed):
        """Each move's incremental metrics == evaluate_batch on the result."""
        scenario = generate_scenarios(1, family, seed=seed)[0]
        app, platform = scenario.application, scenario.platform
        rng = np.random.default_rng(mapping_seed)
        state = MappingState(app, platform, _random_mapping(app, platform, rng))

        # the state's own initial aggregation must already be batch-exact
        seed_batch = evaluate_batch(app, platform, [state.to_mapping()])
        assert state.period == seed_batch.periods[0]
        assert state.latency == seed_batch.latencies[0]

        moves = list(enumerate_moves(state))[:_MOVE_CAP]
        candidates = [evaluate_move(state, move) for move in moves]
        _assert_batch_exact(app, platform, moves, candidates)

    @given(
        family=st.sampled_from(ALL_FAMILIES),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        walk_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_applied_walk_stays_exact(self, family, seed, walk_seed):
        """Exactness survives apply(): spliced entry arrays never drift.

        Applies a random walk of arbitrary (not necessarily improving) moves
        and, after every step, re-checks the carried state and a slice of
        fresh candidates against ``evaluate_batch``.
        """
        scenario = generate_scenarios(1, family, seed=seed)[0]
        app, platform = scenario.application, scenario.platform
        rng = np.random.default_rng(walk_seed)
        state = MappingState(app, platform, _random_mapping(app, platform, rng))
        for _ in range(6):
            moves = list(enumerate_moves(state))
            if not moves:
                break
            move = moves[int(rng.integers(len(moves)))]
            state.apply(evaluate_move(state, move))
            batch = evaluate_batch(app, platform, [state.to_mapping()])
            assert state.period == batch.periods[0], f"after {move!r}"
            assert state.latency == batch.latencies[0], f"after {move!r}"
            fresh = list(enumerate_moves(state))[: _MOVE_CAP // 4]
            _assert_batch_exact(
                app, platform, fresh, [evaluate_move(state, m) for m in fresh]
            )


class TestMoveTypeCoverage:
    def test_every_move_type_checked_on_every_family(self):
        """Deterministic sweep: all five move types exercised per family.

        A drawn mapping may lack some move type (e.g. no free processor ⇒ no
        reassigns/splits), so the hypothesis tests alone cannot promise the
        "for every move type" clause.  This sweep walks fixed seeds per
        family until each move class has been evaluated and verified at
        least once.
        """
        for family in ALL_FAMILIES:
            seen: set[type] = set()
            for seed in range(12):
                scenario = generate_scenarios(1, family, seed=seed)[0]
                app, platform = scenario.application, scenario.platform
                rng = np.random.default_rng(seed + 1000)
                state = MappingState(
                    app, platform, _random_mapping(app, platform, rng)
                )
                moves = list(enumerate_moves(state))[:_MOVE_CAP]
                candidates = [evaluate_move(state, m) for m in moves]
                _assert_batch_exact(app, platform, moves, candidates)
                seen.update(type(m) for m in moves)
                if set(MOVE_TYPES) <= seen:
                    break
            missing = set(MOVE_TYPES) - seen
            # single-stage pipelines admit exactly one interval, so only
            # processor reassignment exists there
            if family == "single-stage":
                assert seen == {ReassignProcessor}
            else:
                assert not missing, f"{family}: never saw {missing}"


class TestMoveValidity:
    @given(
        family=st.sampled_from(ALL_FAMILIES),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        mapping_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_candidate_is_a_valid_mapping(self, family, seed, mapping_seed):
        """Moved mappings always validate: consecutive intervals, distinct procs."""
        scenario = generate_scenarios(1, family, seed=seed)[0]
        app, platform = scenario.application, scenario.platform
        rng = np.random.default_rng(mapping_seed)
        state = MappingState(app, platform, _random_mapping(app, platform, rng))
        for move in list(enumerate_moves(state))[:_MOVE_CAP]:
            candidate = evaluate_move(state, move)
            mapping = _candidate_mapping(candidate, app.n_stages)
            mapping.validate(app, platform)  # raises on structural corruption
