"""Tests of the JSON serialisation helpers."""

from __future__ import annotations

import json

import pytest

from repro.core.costs import evaluate
from repro.core.platform import Platform
from repro.core.serialization import (
    application_from_dict,
    application_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    platform_from_dict,
    platform_to_dict,
    save_json,
    solve_result_from_dict,
    solve_result_to_dict,
)
from repro.generators.platforms import random_fully_heterogeneous_platform
from repro.heuristics import get_heuristic
from repro.solvers import get_solver
from tests.conftest import random_instance


class TestApplicationRoundTrip:
    def test_round_trip_preserves_equality(self, small_app):
        document = application_to_dict(small_app)
        rebuilt = application_from_dict(document)
        assert rebuilt == small_app
        assert rebuilt.name == small_app.name

    def test_document_is_json_serialisable(self, small_app):
        json.dumps(application_to_dict(small_app))

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError):
            application_from_dict({"works": [1.0]})


class TestPlatformRoundTrip:
    def test_comm_homogeneous_round_trip(self, small_platform):
        rebuilt = platform_from_dict(platform_to_dict(small_platform))
        assert rebuilt == small_platform

    def test_heterogeneous_round_trip(self):
        platform = random_fully_heterogeneous_platform(4, seed=0)
        rebuilt = platform_from_dict(platform_to_dict(platform))
        assert rebuilt == platform

    def test_missing_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            platform_from_dict({"speeds": [1.0, 2.0]})


class TestMappingRoundTrip:
    def test_round_trip(self, two_interval_mapping):
        rebuilt = mapping_from_dict(mapping_to_dict(two_interval_mapping))
        assert rebuilt == two_interval_mapping

    def test_costs_survive_round_trip(self):
        app, platform = random_instance(8, 5, seed=0)
        result = get_heuristic("H1").run(app, platform, period_bound=1e-9)
        document = instance_to_dict(app, platform, result.mapping)
        app2, platform2, mapping2 = instance_from_dict(document)
        before = evaluate(app, platform, result.mapping)
        after = evaluate(app2, platform2, mapping2)
        assert after.period == pytest.approx(before.period)
        assert after.latency == pytest.approx(before.latency)

    def test_instance_without_mapping(self, small_app, small_platform):
        document = instance_to_dict(small_app, small_platform)
        app, platform, mapping = instance_from_dict(document)
        assert mapping is None
        assert app == small_app and platform == small_platform

    def test_inconsistent_mapping_rejected(self, small_app, small_platform):
        document = instance_to_dict(small_app, small_platform)
        document["mapping"] = {"intervals": [[0, 1]], "processors": [0]}
        with pytest.raises(ValueError):
            instance_from_dict(document)


class TestFileHelpers:
    def test_save_and_load(self, tmp_path, small_app, small_platform):
        document = instance_to_dict(small_app, small_platform)
        path = save_json(document, tmp_path / "instance.json")
        assert path.exists()
        loaded = load_json(path)
        app, platform, _ = instance_from_dict(loaded)
        assert app == small_app
        assert platform == small_platform


class TestSolveResultRoundTrip:
    def _dump(self, document) -> str:
        return json.dumps(document, indent=2, sort_keys=True)

    def test_heuristic_result_round_trip(self, small_app, small_platform):
        result = get_solver("H1").run(small_app, small_platform, period_bound=6.0)
        document = solve_result_to_dict(result)
        rebuilt = solve_result_from_dict(document)
        assert rebuilt == result
        assert rebuilt.mapping == result.mapping
        assert rebuilt.history == result.history

    def test_round_trip_is_byte_stable(self, small_app, small_platform):
        """dump -> load -> dump must reproduce the exact same bytes."""
        result = get_solver("H4").run(small_app, small_platform, period_bound=5.0)
        first = self._dump(solve_result_to_dict(result))
        second = self._dump(
            solve_result_to_dict(solve_result_from_dict(json.loads(first)))
        )
        assert first == second

    def test_infeasible_result_round_trip(self, small_app, small_platform):
        result = get_solver("hom-dp-latency-for-period").run(
            small_app,
            Platform.communication_homogeneous([2.0, 2.0], bandwidth=10.0),
            period_bound=1e-9,
        )
        assert not result.feasible
        first = self._dump(solve_result_to_dict(result))
        rebuilt = solve_result_from_dict(json.loads(first))
        assert rebuilt == result
        assert not rebuilt.feasible
        assert rebuilt.details["infeasible_reason"]
        assert self._dump(solve_result_to_dict(rebuilt)) == first

    def test_exact_result_without_threshold(self, small_app):
        platform = Platform.communication_homogeneous([3.0, 3.0], bandwidth=10.0)
        result = get_solver("hom-dp-period").run(small_app, platform)
        document = solve_result_to_dict(result)
        assert document["threshold"] is None
        rebuilt = solve_result_from_dict(document)
        assert rebuilt.threshold is None
        assert rebuilt.period == result.period

    def test_document_is_json_serialisable(self, small_app, small_platform):
        result = get_solver("greedy-replication").run(
            small_app, small_platform, period_bound=3.0
        )
        json.dumps(solve_result_to_dict(result))

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError):
            solve_result_from_dict({"type": "solve-result"})

    def test_file_round_trip(self, tmp_path, small_app, small_platform):
        result = get_solver("H1").run(small_app, small_platform, period_bound=6.0)
        path = save_json(solve_result_to_dict(result), tmp_path / "result.json")
        assert solve_result_from_dict(load_json(path)) == result
