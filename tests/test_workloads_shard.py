"""Sharded workload execution and journal merging.

Contracts under test:

* :func:`repro.workloads.plan.shard_tasks` is a **partition** for any
  shard count — every task digest lands in exactly one shard — and a pure
  function of the digests, so membership survives task reordering;
* shards executed via ``execute_plan(plan, shard=(i, n))`` journal against
  the *full* plan digest, so :func:`repro.workloads.engine.merge_journals`
  folds independently-written shard journals into one resumable journal;
* a plan run whole and a plan run as ``n`` merged shards produce
  **byte-identical** reports and sink files;
* merging rejects what it must — mismatched plan digests, conflicting
  payloads for one task digest, foreign schemas — with actionable
  messages, while tolerating identical duplicates, provenance-only
  differences (``wall_time`` et al.) and one truncated tail per shard.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import SolveCache
from repro.core.exceptions import ConfigurationError
from repro.generators.experiments import experiment_config, generate_instances
from repro.workloads import (
    JournalError,
    JsonlSink,
    execute_plan,
    merge_journals,
    render_workload_report,
    shard_tasks,
    solve_plan,
    write_sinks,
)


@pytest.fixture(scope="module")
def instances():
    config = experiment_config("E1", 6, 5, n_instances=5)
    return generate_instances(config, seed=11)


@pytest.fixture(scope="module")
def plan(instances):
    built, _ = solve_plan(instances, [("H1", 4.0), ("H4", 20.0)])
    return built


# --------------------------------------------------------------------------- #
# shard selection
# --------------------------------------------------------------------------- #
class TestShardTasks:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 6])
    def test_shards_partition_the_task_list(self, plan, count):
        """Every task digest lands in exactly one shard, for any count."""
        shards = [shard_tasks(plan, index, count) for index in range(count)]
        digests = [task.digest for shard in shards for task in shard]
        assert sorted(digests) == sorted(task.digest for task in plan.tasks)
        assert len(digests) == len(set(digests))

    def test_membership_is_a_function_of_the_digest(self, plan):
        for index in range(3):
            for task in shard_tasks(plan, index, 3):
                assert int(task.digest, 16) % 3 == index

    def test_single_shard_is_the_whole_plan(self, plan):
        assert shard_tasks(plan, 0, 1) == plan.tasks

    def test_invalid_count_rejected(self, plan):
        with pytest.raises(ConfigurationError, match="count must be >= 1"):
            shard_tasks(plan, 0, 0)

    @pytest.mark.parametrize("index", [-1, 3, 7])
    def test_out_of_range_index_rejected(self, plan, index):
        with pytest.raises(ConfigurationError, match="0 <= index < count"):
            shard_tasks(plan, index, 3)


# --------------------------------------------------------------------------- #
# sharded execution + merge, end to end
# --------------------------------------------------------------------------- #
class TestShardedExecution:
    N_SHARDS = 3

    def _run_shards(self, plan, tmp_path, cache=None):
        paths = []
        for index in range(self.N_SHARDS):
            path = tmp_path / f"shard{index}.jsonl"
            run = execute_plan(
                plan, journal=path, shard=(index, self.N_SHARDS), cache=cache
            )
            expected = len(shard_tasks(plan, index, self.N_SHARDS))
            assert run.stats.n_executed == expected
            assert run.stats.n_out_of_shard == len(plan.tasks) - expected
            paths.append(path)
        return paths

    def test_merged_shards_replay_byte_identical_to_whole_run(
        self, plan, tmp_path
    ):
        paths = self._run_shards(plan, tmp_path)
        merged = tmp_path / "merged.jsonl"
        summary = merge_journals(paths, merged)
        assert summary.plan == plan.digest
        assert summary.n_inputs == self.N_SHARDS
        assert summary.n_records == len(plan.tasks)
        assert summary.n_duplicates == 0

        replayed = execute_plan(plan, journal=merged, resume=True)
        whole = execute_plan(plan)
        assert replayed.complete
        assert replayed.stats.n_executed == 0
        assert replayed.stats.n_from_journal == len(plan.tasks)
        assert render_workload_report(replayed) == render_workload_report(whole)
        for task in plan.tasks:
            assert (
                replayed.result_for(task).identity()
                == whole.result_for(task).identity()
            )

    def test_sink_files_byte_identical_to_whole_run(self, plan, tmp_path):
        paths = self._run_shards(plan, tmp_path)
        merged = tmp_path / "merged.jsonl"
        merge_journals(paths, merged)
        replayed = execute_plan(plan, journal=merged, resume=True)
        whole = execute_plan(plan)
        merged_rows = tmp_path / "merged-rows.jsonl"
        whole_rows = tmp_path / "whole-rows.jsonl"
        with JsonlSink(merged_rows) as sink:
            write_sinks(replayed, [sink])
        with JsonlSink(whole_rows) as sink:
            write_sinks(whole, [sink])
        assert merged_rows.read_bytes() == whole_rows.read_bytes()

    def test_shards_share_a_solve_cache(self, plan, tmp_path):
        """A shared cache dedupes across shards: a whole run on the
        shard-warmed cache solves nothing new."""
        cache = SolveCache()
        self._run_shards(plan, tmp_path, cache=cache)
        whole = execute_plan(plan, cache=cache)
        assert whole.stats.n_solved == 0
        assert whole.stats.n_cache_hits == len(plan.tasks)

    def test_truncated_shard_tail_is_tolerated(self, plan, tmp_path):
        paths = self._run_shards(plan, tmp_path)
        data = paths[0].read_bytes()
        paths[0].write_bytes(data[:-20])  # shard 0's writer died mid-append
        merged = tmp_path / "merged.jsonl"
        summary = merge_journals(paths, merged)
        assert summary.n_records == len(plan.tasks) - 1
        resumed = execute_plan(plan, journal=merged, resume=True)
        assert resumed.complete
        assert resumed.stats.n_executed == 1
        assert render_workload_report(resumed) == render_workload_report(
            execute_plan(plan)
        )

    def test_shard_plus_resume_on_one_journal(self, plan, tmp_path):
        """A shard interrupted by max_tasks resumes within the shard."""
        journal = tmp_path / "shard0.jsonl"
        capped = execute_plan(plan, journal=journal, shard=(0, 2), max_tasks=1)
        assert capped.stats.n_deferred > 0
        resumed = execute_plan(
            plan, journal=journal, shard=(0, 2), resume=True
        )
        assert resumed.stats.n_deferred == 0
        assert resumed.stats.n_from_journal == 1
        expected = len(shard_tasks(plan, 0, 2))
        assert resumed.stats.n_from_journal + resumed.stats.n_executed == expected


# --------------------------------------------------------------------------- #
# merge failure modes
# --------------------------------------------------------------------------- #
class TestMergeFailureModes:
    def _journals(self, plan, tmp_path, n=2):
        paths = []
        for index in range(n):
            path = tmp_path / f"shard{index}.jsonl"
            execute_plan(plan, journal=path, shard=(index, n))
            paths.append(path)
        return paths

    def test_no_inputs_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="at least one input"):
            merge_journals([], tmp_path / "out.jsonl")

    def test_mismatched_plan_digests_rejected(self, plan, instances, tmp_path):
        first, second = self._journals(plan, tmp_path)
        other, _ = solve_plan(instances, [("H1", 9.0)])
        foreign = tmp_path / "foreign.jsonl"
        execute_plan(other, journal=foreign)
        with pytest.raises(JournalError, match="share a single plan"):
            merge_journals([first, second, foreign], tmp_path / "out.jsonl")

    def test_conflicting_payloads_for_one_digest_rejected(self, plan, tmp_path):
        first, second = self._journals(plan, tmp_path)
        # replay one of shard 0's records into shard 1 with a tampered
        # solution: same task digest, different payload
        record = json.loads(first.read_text(encoding="utf-8").splitlines()[1])
        record["result"]["period"] = record["result"]["period"] + 1.0
        with second.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        with pytest.raises(JournalError, match="different\\s+solution payloads"):
            merge_journals([first, second], tmp_path / "out.jsonl")

    def test_provenance_only_differences_are_not_conflicts(self, plan, tmp_path):
        first, second = self._journals(plan, tmp_path)
        record = json.loads(first.read_text(encoding="utf-8").splitlines()[1])
        record["result"]["wall_time"] = 123.456
        record["result"]["cache_hit"] = True
        record["result"]["backend"] = "somewhere-else"
        with second.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        summary = merge_journals([first, second], tmp_path / "out.jsonl")
        assert summary.n_records == len(plan.tasks)
        assert summary.n_duplicates == 1

    def test_identical_duplicates_collapse(self, plan, tmp_path):
        first, second = self._journals(plan, tmp_path)
        # merging a shard with itself changes nothing
        summary = merge_journals(
            [first, first, second], tmp_path / "out.jsonl"
        )
        assert summary.n_records == len(plan.tasks)
        assert summary.n_duplicates > 0

    def test_unsupported_schema_rejected(self, plan, tmp_path):
        first, second = self._journals(plan, tmp_path)
        lines = first.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["schema"] = 99
        lines[0] = json.dumps(header, sort_keys=True)
        first.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="unsupported schema 99"):
            merge_journals([first, second], tmp_path / "out.jsonl")

    def test_foreign_header_kind_rejected(self, plan, tmp_path):
        (first,) = self._journals(plan, tmp_path, n=1)
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"schema":1,"kind":"something-else"}\n')
        with pytest.raises(JournalError, match="not a workload journal"):
            merge_journals([first, bogus], tmp_path / "out.jsonl")

    def test_empty_journal_rejected_with_guidance(self, plan, tmp_path):
        (first,) = self._journals(plan, tmp_path, n=1)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(JournalError, match="drop it from the input list"):
            merge_journals([first, empty], tmp_path / "out.jsonl")

    def test_truncated_header_only_journal_rejected(self, plan, tmp_path):
        (first,) = self._journals(plan, tmp_path, n=1)
        stub = tmp_path / "stub.jsonl"
        stub.write_text('{"schema":1,"kind":"workload-jo')
        with pytest.raises(JournalError, match="truncated header"):
            merge_journals([first, stub], tmp_path / "out.jsonl")

    def test_corrupt_middle_line_rejected(self, plan, tmp_path):
        first, second = self._journals(plan, tmp_path)
        lines = first.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "{corrupt")
        first.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="corrupt at line 2"):
            merge_journals([first, second], tmp_path / "out.jsonl")
