"""Determinism and plumbing tests of the parallel experiment engine.

The contract under test: every experiment driver produces *byte-identical*
results for any ``workers`` / ``batch_size`` combination, because work items
are independent, computed by pure functions, and re-assembled in input order.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.ablation import processor_order_ablation, selection_rule_ablation
from repro.experiments.failure import failure_thresholds
from repro.experiments.runner import reference_ranges, run_heuristic, run_solver
from repro.experiments.sweep import run_sweep, sweep_results_equal
from repro.generators.experiments import experiment_config, generate_instances
from repro.heuristics import get_heuristic
from repro.utils.parallel import (
    available_cpus,
    chunk_items,
    default_batch_size,
    parallel_map,
    resolve_worker_count,
)


@pytest.fixture(scope="module")
def instances():
    cfg = experiment_config("E2", 8, 6, n_instances=6)
    return generate_instances(cfg, seed=5)


# ----------------------------------------------------------------------------- #
# parallel_map primitives
# ----------------------------------------------------------------------------- #
def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(_square, range(7)) == [x * x for x in range(7)]

    def test_workers_preserve_order(self):
        expected = [x * x for x in range(23)]
        assert parallel_map(_square, range(23), workers=3) == expected
        assert parallel_map(_square, range(23), workers=3, batch_size=2) == expected

    def test_empty_and_singleton_inputs(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [3], workers=4) == [9]

    def test_resolve_worker_count(self):
        assert resolve_worker_count(None) == 1
        assert resolve_worker_count(0) == 1
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(5) == 5
        assert resolve_worker_count(-1) == available_cpus()
        with pytest.raises(ValueError):
            resolve_worker_count(-2)

    def test_chunk_items(self):
        assert chunk_items(list(range(5)), 2) == [[0, 1], [2, 3], [4]]
        assert chunk_items([], 3) == []
        with pytest.raises(ValueError):
            chunk_items([1], 0)

    def test_default_batch_size_bounds(self):
        assert default_batch_size(0, 4) == 1
        assert 1 <= default_batch_size(10, 4) <= 10
        assert default_batch_size(10_000, 1) <= 256


# ----------------------------------------------------------------------------- #
# runner determinism
# ----------------------------------------------------------------------------- #
class TestRunnerDeterminism:
    def test_run_heuristic_workers_identical(self, instances):
        h1 = get_heuristic("H1")
        serial = run_heuristic(h1, instances, threshold=6.0)
        parallel = run_heuristic(h1, instances, threshold=6.0, workers=3, batch_size=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.instance_index == b.instance_index
            assert a.result.period == b.result.period
            assert a.result.latency == b.result.latency
            assert a.result.feasible == b.result.feasible
            assert a.result.mapping == b.result.mapping

    def test_run_solver_results_identity_workers_identical(self, instances):
        """Full-result byte identity modulo the wall-time provenance stamp.

        ``SolveResult.identity()`` is the single place excluding ``wall_time``
        from determinism comparisons; everything else must match field by
        field between a serial and a pooled run.
        """
        serial = run_solver("H1", instances, 6.0)
        parallel = run_solver("H1", instances, 6.0, workers=3, batch_size=2)
        assert [a.result.identity() for a in serial] == [
            b.result.identity() for b in parallel
        ]

    def test_reference_ranges_workers_identical(self, instances):
        assert reference_ranges(instances) == reference_ranges(
            instances, workers=2, batch_size=2
        )

    def test_run_solver_by_registry_name_workers_identical(self, instances):
        """An exact solver dispatched by name: workers=N byte-identical."""
        serial = run_solver("bitmask-dp-latency-for-period", instances, 20.0)
        parallel = run_solver(
            "bitmask-dp-latency-for-period", instances, 20.0,
            workers=3, batch_size=2,
        )
        for a, b in zip(serial, parallel):
            assert a.instance_index == b.instance_index
            assert a.result.identity() == b.result.identity()
            assert a.result.solver == "bitmask-dp-latency-for-period"
            assert a.result.family == "exact"

    def test_failure_thresholds_workers_identical(self, instances):
        cfg = instances[0].config
        serial = failure_thresholds(cfg, instances=instances)
        parallel = failure_thresholds(
            cfg, instances=instances, workers=3, batch_size=4
        )
        for a, b in zip(serial, parallel):
            assert a.key == b.key
            assert a.mean_threshold == b.mean_threshold
            assert a.per_instance == b.per_instance


# ----------------------------------------------------------------------------- #
# sweep determinism (the Figures 2-7 driver)
# ----------------------------------------------------------------------------- #
class TestSweepDeterminism:
    def test_small_sweep_workers_identical(self):
        cfg = experiment_config("E1", 8, 6, n_instances=4)
        serial = run_sweep(cfg, n_thresholds=4, seed=2)
        parallel = run_sweep(cfg, n_thresholds=4, seed=2, workers=3, batch_size=2)
        assert sweep_results_equal(serial, parallel)

    def test_p100_sweep_workers_identical(self):
        """The acceptance case: a p=100 sweep, workers=4 versus workers=1."""
        cfg = experiment_config("E1", 10, 100, n_instances=3)
        serial = run_sweep(cfg, n_thresholds=4, seed=0, workers=1)
        parallel = run_sweep(cfg, n_thresholds=4, seed=0, workers=4)
        assert sweep_results_equal(serial, parallel)

    def test_sweep_over_registry_names_workers_identical(self):
        """Sweeping a mixed solver list (heuristic + exact) by name."""
        cfg = experiment_config("E1", 6, 4, n_instances=3)
        names = ["H1", "bitmask-dp-latency-for-period"]
        serial = run_sweep(cfg, heuristics=names, n_thresholds=3, seed=7)
        parallel = run_sweep(
            cfg, heuristics=names, n_thresholds=3, seed=7, workers=3, batch_size=1
        )
        assert sweep_results_equal(serial, parallel)
        assert set(serial.curves) == {"Sp mono P", "bitmask-dp-latency-for-period"}

    def test_sweep_results_equal_detects_differences(self):
        cfg = experiment_config("E1", 6, 4, n_instances=3)
        a = run_sweep(cfg, n_thresholds=3, seed=1)
        b = run_sweep(cfg, n_thresholds=3, seed=2)
        assert sweep_results_equal(a, a)
        assert not sweep_results_equal(a, b)


# ----------------------------------------------------------------------------- #
# generators and ablations
# ----------------------------------------------------------------------------- #
class TestGeneratorDeterminism:
    def test_generate_instances_workers_identical(self):
        cfg = experiment_config("E3", 9, 7, n_instances=8)
        serial = generate_instances(cfg, seed=21)
        parallel = generate_instances(cfg, seed=21, workers=3, batch_size=3)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.index == b.index
            assert np.array_equal(a.application.works, b.application.works)
            assert np.array_equal(a.application.comm_sizes, b.application.comm_sizes)
            assert np.array_equal(a.platform.speeds, b.platform.speeds)
            assert a.application.name == b.application.name

    def test_chunking_never_perturbs_instances(self):
        """Chunk layout must not leak into the streams (pre-spawned seeds)."""
        cfg = experiment_config("E1", 5, 4, n_instances=6)
        baseline = generate_instances(cfg, seed=3)
        for batch in (1, 2, 5):
            chunked = generate_instances(cfg, seed=3, workers=2, batch_size=batch)
            for a, b in zip(baseline, chunked):
                assert np.array_equal(a.application.works, b.application.works)


class TestAblationDeterminism:
    def test_selection_rule_ablation_workers_identical(self, instances):
        cfg = instances[0].config
        serial = selection_rule_ablation(cfg, instances=instances)
        parallel = selection_rule_ablation(
            cfg, instances=instances, workers=2, batch_size=2
        )
        assert [r.as_tuple() for r in serial] == [r.as_tuple() for r in parallel]

    def test_processor_order_ablation_workers_identical(self, instances):
        cfg = instances[0].config
        serial = processor_order_ablation(cfg, seed=4, instances=instances)
        parallel = processor_order_ablation(
            cfg, seed=4, instances=instances, workers=2
        )
        for a, b in zip(serial, parallel):
            assert a.variant == b.variant
            assert math.isclose(a.mean_best_period, b.mean_best_period, rel_tol=0.0)
            assert math.isclose(a.mean_latency_at_best, b.mean_latency_at_best, rel_tol=0.0)
