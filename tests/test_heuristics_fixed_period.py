"""Tests of the fixed-period heuristics (H1 Sp-mono-P, H2 3-Explo-mono, H3 3-Explo-bi)."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate, interval_cycle_time, optimal_latency
from repro.core.exceptions import ConfigurationError
from repro.core.mapping import Interval
from repro.heuristics import (
    SplittingMonoPeriod,
    ThreeExploBi,
    ThreeExploMono,
)
from tests.conftest import random_instance

FIXED_PERIOD_HEURISTICS = [SplittingMonoPeriod, ThreeExploMono, ThreeExploBi]


@pytest.fixture(params=FIXED_PERIOD_HEURISTICS, ids=lambda cls: cls.key)
def heuristic(request):
    return request.param()


class TestInterface:
    def test_requires_period_bound(self, heuristic, small_app, small_platform):
        with pytest.raises(ConfigurationError):
            heuristic.run(small_app, small_platform, latency_bound=10.0)
        with pytest.raises(ConfigurationError):
            heuristic.run(small_app, small_platform)
        with pytest.raises(ConfigurationError):
            heuristic.run(small_app, small_platform, period_bound=-1.0)

    def test_result_metrics_match_mapping(self, heuristic, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        result = heuristic.run(app, platform, period_bound=5.0)
        ev = evaluate(app, platform, result.mapping)
        assert result.period == pytest.approx(ev.period)
        assert result.latency == pytest.approx(ev.latency)
        assert result.threshold == 5.0
        assert result.heuristic == heuristic.name

    def test_history_starts_at_lemma1(self, heuristic, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        result = heuristic.run(app, platform, period_bound=1e-9)
        first_period, first_latency = result.history[0]
        assert first_latency == pytest.approx(optimal_latency(app, platform))
        whole = Interval(0, app.n_stages - 1)
        assert first_period == pytest.approx(
            interval_cycle_time(app, platform, whole, platform.fastest_processor)
        )
        assert len(result.history) == result.n_splits + 1


class TestFeasibility:
    def test_loose_bound_returns_lemma1_mapping(self, heuristic, medium_instance):
        """A bound above the single-processor cycle needs no split at all."""
        app, platform = medium_instance.application, medium_instance.platform
        whole = Interval(0, app.n_stages - 1)
        bound = interval_cycle_time(app, platform, whole, platform.fastest_processor) * 1.01
        result = heuristic.run(app, platform, period_bound=bound)
        assert result.feasible
        assert result.n_splits == 0
        assert result.latency == pytest.approx(optimal_latency(app, platform))

    def test_impossible_bound_reports_failure(self, heuristic, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        result = heuristic.run(app, platform, period_bound=1e-9)
        assert not result.feasible
        # the mapping returned is still valid and evaluable
        result.mapping.validate(app, platform)

    def test_feasible_flag_matches_threshold(self, heuristic, medium_instance):
        app, platform = medium_instance.application, medium_instance.platform
        for bound in (2.0, 4.0, 8.0, 16.0):
            result = heuristic.run(app, platform, period_bound=bound)
            assert result.feasible == (result.period <= bound * (1 + 1e-9) + 1e-12)

    def test_monotone_in_threshold(self, heuristic, medium_instance):
        """If the heuristic succeeds at a threshold, it succeeds at any larger one."""
        app, platform = medium_instance.application, medium_instance.platform
        probe = heuristic.run(app, platform, period_bound=1e-9)
        reachable = probe.period
        assert heuristic.run(app, platform, period_bound=reachable * 1.001).feasible
        assert heuristic.run(app, platform, period_bound=reachable * 2.0).feasible


class TestStructuralInvariants:
    def test_mapping_uses_distinct_processors(self, heuristic):
        for seed in range(3):
            app, platform = random_instance(12, 8, seed=seed)
            result = heuristic.run(app, platform, period_bound=1e-9)
            procs = result.mapping.processors
            assert len(set(procs)) == len(procs)
            result.mapping.validate(app, platform)

    def test_period_never_exceeds_single_processor_cycle(self, heuristic):
        """Splitting starts from the Lemma 1 mapping and only improves the period."""
        for seed in range(3):
            app, platform = random_instance(10, 6, seed=seed)
            whole = Interval(0, app.n_stages - 1)
            start = interval_cycle_time(app, platform, whole, platform.fastest_processor)
            result = heuristic.run(app, platform, period_bound=1e-9)
            assert result.period <= start + 1e-9

    def test_history_periods_non_increasing(self, heuristic):
        for seed in range(3):
            app, platform = random_instance(10, 6, seed=seed)
            result = heuristic.run(app, platform, period_bound=1e-9)
            periods = [p for p, _ in result.history]
            assert all(b <= a + 1e-9 for a, b in zip(periods, periods[1:]))

    def test_latency_never_below_optimum(self, heuristic):
        for seed in range(3):
            app, platform = random_instance(10, 6, seed=seed)
            result = heuristic.run(app, platform, period_bound=1e-9)
            assert result.latency >= optimal_latency(app, platform) - 1e-9


class TestRelativeBehaviour:
    def test_three_explo_consumes_processor_pairs(self):
        app, platform = random_instance(20, 10, seed=7)
        result = ThreeExploMono().run(app, platform, period_bound=1e-9)
        # every 3-way split enrolls exactly two new processors
        assert result.mapping.n_intervals == 1 + 2 * result.n_splits

    def test_sp_mono_p_single_processor_platform(self):
        app, platform = random_instance(5, 1, seed=3)
        result = SplittingMonoPeriod().run(app, platform, period_bound=1e-9)
        assert result.n_splits == 0
        assert result.mapping.n_intervals == 1
