"""Tests of the fully-heterogeneous-platform extension."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate, optimal_latency
from repro.extensions.heterogeneous_links import HeterogeneousSplittingPeriod
from repro.generators.applications import random_pipeline
from repro.generators.platforms import (
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
)
from repro.heuristics import SplittingMonoPeriod


def hetero_instance(seed: int, n: int = 10, p: int = 6):
    app = random_pipeline(n, work_range=(1, 20), comm_range=(1, 100), seed=seed)
    platform = random_fully_heterogeneous_platform(p, seed=seed)
    return app, platform


class TestHeterogeneousHeuristic:
    def test_runs_on_heterogeneous_platforms(self):
        app, platform = hetero_instance(0)
        result = HeterogeneousSplittingPeriod().run(app, platform, period_bound=1e-9)
        result.mapping.validate(app, platform)
        ev = evaluate(app, platform, result.mapping)
        assert result.period == pytest.approx(ev.period)
        assert result.latency == pytest.approx(ev.latency)

    def test_period_only_improves_during_run(self):
        for seed in range(3):
            app, platform = hetero_instance(seed)
            result = HeterogeneousSplittingPeriod().run(app, platform, period_bound=1e-9)
            periods = [p for p, _ in result.history]
            assert all(b <= a + 1e-9 for a, b in zip(periods, periods[1:]))

    def test_feasibility_semantics(self):
        app, platform = hetero_instance(1)
        h = HeterogeneousSplittingPeriod()
        reachable = h.run(app, platform, period_bound=1e-9).period
        assert h.run(app, platform, period_bound=reachable * 1.001).feasible
        assert not h.run(app, platform, period_bound=reachable * 0.9).feasible

    def test_latency_never_below_lemma1(self):
        app, platform = hetero_instance(2)
        result = HeterogeneousSplittingPeriod().run(app, platform, period_bound=1e-9)
        assert result.latency >= optimal_latency(app, platform) - 1e-9

    def test_matches_sp_mono_p_spirit_on_comm_homogeneous_platform(self):
        """On a communication-homogeneous platform the extension heuristic
        reaches a period at least as good as H1 (it explores a superset of
        recipient processors)."""
        for seed in range(3):
            app = random_pipeline(10, work_range=(1, 20), comm_range=(1, 100), seed=seed)
            platform = random_comm_homogeneous_platform(6, seed=seed)
            h1 = SplittingMonoPeriod().run(app, platform, period_bound=1e-9)
            hx = HeterogeneousSplittingPeriod().run(app, platform, period_bound=1e-9)
            assert hx.period <= h1.period * 1.05 + 1e-9
