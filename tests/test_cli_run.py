"""Tests of the ``run`` CLI command (workload specs end to end) and the
workload-related satellites: the single-sourced ``--workers`` default and
the cache hit-rate surfacing."""

from __future__ import annotations

import json

import pytest

from repro.cache import SolveCache
from repro.cli import build_parser, main
from repro.utils.parallel import DEFAULT_WORKERS

SPEC_DOC = {
    "name": "cli-run-test",
    "seed": 1,
    "source": {
        "kind": "generator",
        "family": "E1",
        "n_stages": 5,
        "n_processors": 4,
        "n_instances": 4,
    },
    "jobs": [{"solvers": ["H1", "H4"], "thresholds": [3.0, 10.0]}],
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
    return path


class TestRunCommand:
    def test_complete_run(self, spec_path, capsys):
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-run-test" in out
        assert "Sp mono P" in out
        assert "16 of 16 completed" in out

    def test_interrupt_then_resume_is_byte_identical(
        self, spec_path, tmp_path, capsys
    ):
        journal = tmp_path / "journal.jsonl"
        assert main(
            ["run", str(spec_path), "--journal", str(journal), "--max-tasks", "5"]
        ) == 3
        partial = capsys.readouterr()
        assert "INCOMPLETE" in partial.out
        assert "deferred" in partial.err
        assert main(
            ["run", str(spec_path), "--journal", str(journal), "--resume"]
        ) == 0
        resumed = capsys.readouterr().out
        assert main(["run", str(spec_path)]) == 0
        fresh = capsys.readouterr().out
        assert resumed == fresh

    def test_sinks_are_written(self, spec_path, tmp_path, capsys):
        jsonl = tmp_path / "rows.jsonl"
        csv_path = tmp_path / "rows.csv"
        assert main(
            ["run", str(spec_path), "--sink", str(jsonl), "--sink", str(csv_path)]
        ) == 0
        capsys.readouterr()
        assert len(jsonl.read_text(encoding="utf-8").splitlines()) == 16
        assert len(csv_path.read_text(encoding="utf-8").splitlines()) == 17

    def test_workers_byte_identical(self, spec_path, capsys):
        assert main(["run", str(spec_path)]) == 0
        serial = capsys.readouterr().out
        assert main(["run", str(spec_path), "--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        assert serial == pooled

    def test_cache_stats_on_stderr_include_hit_rate(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--cache"]) == 0
        err = capsys.readouterr().err
        assert "hit rate" in err

    def test_resume_needs_journal(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_missing_spec_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_invalid_spec_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"solvers": ["H1"]}), encoding="utf-8")
        assert main(["run", str(path)]) == 2
        assert "source" in capsys.readouterr().err

    def test_unknown_solver_rejected(self, tmp_path, capsys):
        document = dict(SPEC_DOC, jobs=[{"solvers": ["H99"], "thresholds": [3.0]}])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert main(["run", str(path)]) == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_bad_sink_extension_rejected_before_executing(
        self, spec_path, tmp_path, capsys
    ):
        journal = tmp_path / "journal.jsonl"
        assert main(
            ["run", str(spec_path), "--journal", str(journal),
             "--sink", "rows.txt"]
        ) == 2
        assert "sink" in capsys.readouterr().err
        # sinks are validated before execution: nothing ran, no journal grew
        assert not journal.exists()

    def test_csv_sink_rejected_for_differential_specs(self, tmp_path, capsys):
        document = {
            "kind": "differential",
            "source": {
                "kind": "scenarios",
                "count": 3,
                "families": ["homogeneous-chain"],
            },
            "n_datasets": 4,
        }
        path = tmp_path / "diff.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert main(["run", str(path), "--sink", str(tmp_path / "r.csv")]) == 2
        assert "CSV sink" in capsys.readouterr().err


class TestShardedRun:
    N_SHARDS = 3

    def _shard_paths(self, tmp_path):
        return [tmp_path / f"shard{i}.jsonl" for i in range(self.N_SHARDS)]

    def test_shard_needs_journal(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--shard", "0/3"]) == 2
        assert "--journal" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["3", "a/b", "1/0", "3/3", "-1/3"])
    def test_malformed_shard_rejected_by_the_parser(self, spec_path, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(spec_path), "--journal", "j.jsonl",
                  "--shard", value])
        assert excinfo.value.code == 2

    def test_sharded_run_merges_byte_identical_to_whole(
        self, spec_path, tmp_path, capsys
    ):
        """The CI shard-smoke contract, end to end through the CLI."""
        cache_dir = tmp_path / "cache"
        for index, journal in enumerate(self._shard_paths(tmp_path)):
            argv = [
                "run", str(spec_path), "--journal", str(journal),
                "--shard", f"{index}/{self.N_SHARDS}",
                "--cache-dir", str(cache_dir),
            ]
            assert main(argv) == 3  # the shard is done, the run is not
            captured = capsys.readouterr()
            assert f"shard {index}/{self.N_SHARDS} done" in captured.err
        merged = tmp_path / "merged.jsonl"
        assert main(
            ["merge-journals", *map(str, self._shard_paths(tmp_path)),
             "--output", str(merged)]
        ) == 0
        assert "merged 3 journal(s)" in capsys.readouterr().out
        assert main(
            ["run", str(spec_path), "--journal", str(merged), "--resume"]
        ) == 0
        from_shards = capsys.readouterr().out
        assert main(["run", str(spec_path)]) == 0
        whole = capsys.readouterr().out
        assert from_shards == whole

    def test_merge_rejects_mismatched_plans(self, spec_path, tmp_path, capsys):
        journal = tmp_path / "shard0.jsonl"
        assert main(
            ["run", str(spec_path), "--journal", str(journal),
             "--shard", "0/2"]
        ) == 3
        other_doc = dict(
            SPEC_DOC, jobs=[{"solvers": ["H1"], "thresholds": [5.0]}]
        )
        other_path = tmp_path / "other.json"
        other_path.write_text(json.dumps(other_doc), encoding="utf-8")
        foreign = tmp_path / "foreign.jsonl"
        assert main(["run", str(other_path), "--journal", str(foreign)]) == 0
        capsys.readouterr()
        assert main(
            ["merge-journals", str(journal), str(foreign),
             "--output", str(tmp_path / "out.jsonl")]
        ) == 2
        assert "share a single plan" in capsys.readouterr().err

    def test_merge_missing_input_is_a_config_error(self, tmp_path, capsys):
        assert main(
            ["merge-journals", str(tmp_path / "nope.jsonl"),
             "--output", str(tmp_path / "out.jsonl")]
        ) == 2
        assert "not found" in capsys.readouterr().err


class TestFuzzJournal:
    def test_fuzz_resume_is_byte_identical(self, tmp_path, capsys):
        journal = tmp_path / "fuzz-journal.jsonl"
        base = ["fuzz", "--count", "12", "--seed", "0", "--datasets", "4"]
        assert main(base) == 0
        fresh = capsys.readouterr().out
        assert main(base + ["--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--journal", str(journal), "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert fresh == first == resumed

    def test_fuzz_resume_needs_journal(self, capsys):
        assert main(["fuzz", "--count", "2", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err


class TestWorkersDefaultSingleSourced:
    #: every command that forwards work to the process pool
    POOL_COMMANDS = (
        ["batch"],
        ["sweep"],
        ["failure"],
        ["ablation"],
        ["validate"],
        ["fuzz"],
        ["run", "spec.json"],
    )

    def test_every_pool_command_shares_the_default(self):
        parser = build_parser()
        for argv in self.POOL_COMMANDS:
            args = parser.parse_args(argv)
            assert args.workers == DEFAULT_WORKERS, argv

    def test_help_documents_the_default_everywhere(self, capsys):
        for argv in self.POOL_COMMANDS:
            with pytest.raises(SystemExit):
                build_parser().parse_args([argv[0], "--help"])
            help_text = " ".join(capsys.readouterr().out.split())
            assert f"default: {DEFAULT_WORKERS} = serial" in help_text, argv


class TestHitRateSatellite:
    def test_solvecache_hit_rate_property(self):
        cache = SolveCache()
        assert cache.hit_rate == 0.0
        cache.stats.hits = 3
        cache.stats.misses = 1
        assert cache.hit_rate == 0.75
        assert cache.hit_rate == cache.stats.hit_rate

    def test_batch_summary_line_includes_hit_rate(self, capsys):
        argv = [
            "batch", "--family", "E1", "--stages", "5", "--processors", "4",
            "--instances", "3", "--repeat", "2", "--period", "8",
            "--latency", "40", "--cache",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "hit rate" in err
        # both the per-batch summary and the cache describe() line carry it
        assert err.count("hit rate") >= 2

    def test_sweep_and_solve_stderr_include_hit_rate(self, capsys):
        solve = [
            "solve", "--works", "4", "2", "--comms", "1", "1", "1",
            "--speeds", "2", "1", "--solver", "H1", "--period", "9", "--cache",
        ]
        assert main(solve) == 0
        assert "hit rate" in capsys.readouterr().err
        sweep = [
            "sweep", "--family", "E1", "--stages", "5", "--processors", "4",
            "--instances", "2", "--thresholds", "2", "--cache",
        ]
        assert main(sweep) == 0
        assert "hit rate" in capsys.readouterr().err
