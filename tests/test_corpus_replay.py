"""Tier-1 replay of the regression corpus (``tests/corpus/``).

Every corpus entry — curated seed instance or shrunk fuzz counterexample —
is replayed through the full differential oracle on every test run, so a
disagreement fixed once can never silently come back.  On top of the oracle,
the corpus carries the strict simulator-agreement contract: the event-driven
and synchronous simulators must produce *identical* steady-state periods on
every corpus instance (1e-9 relative, i.e. floating-point noise only —
corpus instances reach steady state by construction).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.costs import evaluate, optimal_latency_mapping
from repro.core.serialization import SerializationError
from repro.heuristics import get_heuristic
from repro.scenarios import (
    CORPUS_SCHEMA,
    differential_check,
    instance_digest,
    load_corpus,
    load_corpus_entry,
    save_counterexample,
)
from repro.simulation.event_driven import simulate_mapping
from repro.simulation.synchronous import synchronous_schedule

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def _entry_ids():
    return [entry.label for entry in ENTRIES]


class TestCorpusContents:
    def test_corpus_is_not_empty(self):
        assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"

    def test_entries_carry_provenance(self):
        for entry in ENTRIES:
            assert entry.family
            assert entry.check
            assert entry.note
            assert entry.digest == instance_digest(entry.application, entry.platform)
            assert entry.path is not None and entry.path.name.endswith(".json")


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_ids())
class TestCorpusReplay:
    def test_differential_oracle_passes(self, entry):
        report = differential_check(entry.application, entry.platform)
        assert report.ok, (
            f"corpus regression {entry.label} ({entry.check}): "
            + "; ".join(str(f) for f in report.failures)
        )

    def test_simulators_agree_on_steady_state_period(self, entry):
        """Event-driven and synchronous steady-state periods are identical."""
        app, platform = entry.application, entry.platform
        mappings = [optimal_latency_mapping(app, platform)]
        if platform.is_communication_homogeneous:
            mappings.append(
                get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
            )
        for mapping in mappings:
            datasets = max(60, 4 * mapping.n_intervals)
            sync = synchronous_schedule(app, platform, mapping, n_datasets=datasets)
            event = simulate_mapping(app, platform, mapping, n_datasets=datasets)
            s, e = sync.measured_period(), event.measured_period()
            assert e == pytest.approx(s, rel=1e-9, abs=1e-9), (
                f"{entry.label}: event-driven steady-state period {e!r} != "
                f"synchronous {s!r} on {mapping!r}"
            )
            analytical = evaluate(app, platform, mapping)
            assert s == pytest.approx(analytical.period, rel=1e-9, abs=1e-9)


class TestCorpusFormat:
    def test_round_trip_through_save_and_load(self, tmp_path):
        entry = ENTRIES[0]
        path = save_counterexample(
            tmp_path,
            entry.application,
            entry.platform,
            family=entry.family,
            check=entry.check,
            note="round-trip",
        )
        loaded = load_corpus_entry(path)
        assert loaded.digest == entry.digest
        assert loaded.application == entry.application
        assert loaded.platform == entry.platform
        # content-addressed: saving again is an idempotent overwrite
        assert save_counterexample(
            tmp_path, entry.application, entry.platform,
            family=entry.family, check=entry.check, note="round-trip",
        ) == path
        assert len(load_corpus(tmp_path)) == 1

    def test_unknown_schema_is_rejected(self, tmp_path):
        document = json.loads(ENTRIES[0].path.read_text(encoding="utf-8"))
        document["schema"] = CORPUS_SCHEMA + 1
        bad = tmp_path / "bad-schema.json"
        bad.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(SerializationError, match="schema"):
            load_corpus_entry(bad)

    def test_digest_mismatch_is_rejected(self, tmp_path):
        document = json.loads(ENTRIES[0].path.read_text(encoding="utf-8"))
        document["instance"]["application"]["works"][0] += 1.0
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(SerializationError, match="digest mismatch"):
            load_corpus_entry(tampered)

    def test_missing_directory_is_an_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "does-not-exist") == []
