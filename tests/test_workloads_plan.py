"""Hypothesis properties of the workload plan expansion.

The contract pinned here is the one the checkpoint journal depends on:
**expansion is a pure, order-independent function of the spec content** —
the same spec digest always yields the same plan bytes, whatever the JSON
key order, the order of an explicit instance list, or the process doing the
expanding.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import expand_spec, solve_plan, spec_from_document

#: integer-valued floats survive every JSON round trip exactly
_NUM = st.integers(1, 30)

#: the six heuristics: always applicable to the explicit instances below
_SOLVERS = st.lists(
    st.sampled_from(["H1", "H2", "H3", "H4", "H5", "H6"]),
    min_size=1,
    max_size=3,
    unique=True,
)

_THRESHOLDS = st.lists(
    st.integers(1, 50).map(float), min_size=1, max_size=3, unique=True
)


@st.composite
def _instance_documents(draw):
    """A small list of valid explicit instance documents."""
    count = draw(st.integers(1, 4))
    documents = []
    for _ in range(count):
        n = draw(st.integers(1, 4))
        p = draw(st.integers(1, 3))
        documents.append(
            {
                "application": {
                    "works": [float(draw(_NUM)) for _ in range(n)],
                    "comm_sizes": [float(draw(_NUM)) for _ in range(n + 1)],
                },
                "platform": {
                    "speeds": [float(draw(_NUM)) for _ in range(p)],
                    "bandwidth": float(draw(_NUM)),
                },
            }
        )
    return documents


@st.composite
def _spec_documents(draw):
    return {
        "name": draw(st.sampled_from(["", "campaign"])),
        "seed": draw(st.integers(0, 3)),
        "repeats": draw(st.integers(1, 2)),
        "source": {"kind": "explicit", "instances": draw(_instance_documents())},
        "jobs": [
            {"solvers": draw(_SOLVERS), "thresholds": draw(_THRESHOLDS)},
        ],
    }


def _shuffled(document: dict, order) -> dict:
    """The same document with a different key insertion order (recursively)."""
    items = list(document.items())
    permuted = [items[i] for i in order.permute(range(len(items)))]
    return {
        key: _shuffled(value, order) if isinstance(value, dict) else value
        for key, value in permuted
    }


class _Permuter:
    def __init__(self, draw):
        self._draw = draw

    def permute(self, indices):
        return self._draw(st.permutations(list(indices)))


class TestExpansionDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(document=_spec_documents())
    def test_expansion_is_deterministic(self, document):
        """Expanding the same spec twice yields byte-identical plans."""
        spec = spec_from_document(document)
        plan_a = expand_spec(spec)
        plan_b = expand_spec(spec_from_document(json.loads(json.dumps(document))))
        assert plan_a.payload() == plan_b.payload()
        assert plan_a.digest == plan_b.digest

    @settings(max_examples=25, deadline=None)
    @given(document=_spec_documents(), data=st.data())
    def test_key_order_never_changes_digest_or_plan(self, document, data):
        """Same digest and same plan bytes whatever the JSON key order."""
        permuter = _Permuter(data.draw)
        shuffled = _shuffled(document, permuter)
        spec_a = spec_from_document(document)
        spec_b = spec_from_document(shuffled)
        assert spec_a.digest == spec_b.digest
        assert expand_spec(spec_a).payload() == expand_spec(spec_b).payload()

    @settings(max_examples=25, deadline=None)
    @given(document=_spec_documents(), data=st.data())
    def test_instance_permutation_never_changes_digest_or_plan(
        self, document, data
    ):
        """Permuting an explicit instance list is invisible end to end."""
        instances = document["source"]["instances"]
        permuted = data.draw(st.permutations(instances))
        other = json.loads(json.dumps(document))
        other["source"]["instances"] = list(permuted)
        spec_a = spec_from_document(document)
        spec_b = spec_from_document(other)
        assert spec_a.digest == spec_b.digest
        plan_a, plan_b = expand_spec(spec_a), expand_spec(spec_b)
        assert plan_a.payload() == plan_b.payload()
        assert plan_a.digest == plan_b.digest

    @settings(max_examples=25, deadline=None)
    @given(document=_spec_documents())
    def test_task_digests_are_unique_and_stable(self, document):
        """No two plan cells collide, and digests match their documents."""
        plan = expand_spec(spec_from_document(document))
        digests = [task.digest for task in plan.tasks]
        assert len(set(digests)) == len(digests)
        n_thresholds = len(document["jobs"][0]["thresholds"])
        n_solvers = len(document["jobs"][0]["solvers"])
        assert len(plan.tasks) == (
            plan.n_instances * n_solvers * n_thresholds * document["repeats"]
        )


class TestSolvePlanBuilder:
    def test_cells_map_every_instance(self, medium_instance):
        from repro.core.identity import instance_digest

        plan, cells = solve_plan([medium_instance], [("H1", 5.0), ("H2", 5.0)])
        digest = instance_digest(
            medium_instance.application, medium_instance.platform
        )
        assert len(cells) == 2
        assert {cell.solver for cell in cells} == {"Sp mono P", "3-Explo mono"}
        for cell in cells:
            assert cell.tasks[digest].digest in {t.digest for t in plan.tasks}

    def test_duplicate_instances_collapse(self, medium_instance):
        plan, _ = solve_plan([medium_instance, medium_instance], [("H1", 5.0)])
        assert plan.n_instances == 1
        assert len(plan.tasks) == 1
