"""Unit tests for :mod:`repro.core.application`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.application import PipelineApplication, Stage
from repro.core.exceptions import InvalidApplicationError


class TestStage:
    def test_default_name_is_one_based(self):
        stage = Stage(index=0, work=3.0, input_size=1.0, output_size=2.0)
        assert stage.name == "S1"
        assert stage.label == "S1"

    def test_explicit_name_is_kept(self):
        stage = Stage(index=2, work=3.0, input_size=1.0, output_size=2.0, name="decode")
        assert stage.name == "decode"


class TestConstruction:
    def test_basic_construction(self):
        app = PipelineApplication([1, 2, 3], [10, 20, 30, 40])
        assert app.n_stages == 3
        assert len(app) == 3
        assert app.total_work == 6.0
        assert app.total_comm == 100.0

    def test_empty_works_rejected(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication([], [1.0])

    def test_wrong_comm_length_rejected(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication([1, 2], [1, 2])
        with pytest.raises(InvalidApplicationError):
            PipelineApplication([1, 2], [1, 2, 3, 4])

    def test_negative_work_rejected(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication([1, -2], [1, 1, 1])

    def test_negative_comm_rejected(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication([1, 2], [1, -1, 1])

    def test_non_finite_values_rejected(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication([1, float("nan")], [1, 1, 1])
        with pytest.raises(InvalidApplicationError):
            PipelineApplication([1, 2], [1, float("inf"), 1])

    def test_zero_work_is_allowed(self):
        app = PipelineApplication([0.0, 1.0], [1, 1, 1])
        assert app.work(0) == 0.0

    def test_arrays_are_read_only(self):
        app = PipelineApplication([1, 2], [1, 1, 1])
        with pytest.raises(ValueError):
            app.works[0] = 5.0
        with pytest.raises(ValueError):
            app.comm_sizes[0] = 5.0


class TestAccessors:
    def test_work_and_comm_lookup(self, small_app):
        assert small_app.work(0) == 4.0
        assert small_app.work(3) == 8.0
        assert small_app.comm(0) == 10.0
        assert small_app.comm(4) == 10.0
        assert small_app.input_size(2) == 6.0
        assert small_app.output_size(2) == 2.0

    def test_out_of_range_stage(self, small_app):
        with pytest.raises(InvalidApplicationError):
            small_app.work(4)
        with pytest.raises(InvalidApplicationError):
            small_app.work(-1)
        with pytest.raises(InvalidApplicationError):
            small_app.comm(5)

    def test_non_integer_index_rejected(self, small_app):
        with pytest.raises(InvalidApplicationError):
            small_app.work(1.5)  # type: ignore[arg-type]

    def test_stage_records(self, small_app):
        stages = list(small_app.stages())
        assert len(stages) == 4
        assert stages[1].work == 2.0
        assert stages[1].input_size == 4.0
        assert stages[1].output_size == 6.0
        assert [s.name for s in stages] == ["S1", "S2", "S3", "S4"]

    def test_iteration_matches_stages(self, small_app):
        assert [s.index for s in small_app] == [0, 1, 2, 3]


class TestAggregates:
    def test_work_sum_full_range(self, small_app):
        assert small_app.work_sum(0, 3) == small_app.total_work == 20.0

    def test_work_sum_sub_intervals(self, small_app):
        assert small_app.work_sum(1, 2) == 8.0
        assert small_app.work_sum(2, 2) == 6.0

    def test_work_sum_matches_numpy(self, rng):
        works = rng.uniform(0.1, 10, size=25)
        app = PipelineApplication(works, np.ones(26))
        for _ in range(20):
            d = int(rng.integers(0, 25))
            e = int(rng.integers(d, 25))
            assert app.work_sum(d, e) == pytest.approx(works[d : e + 1].sum())

    def test_work_sum_empty_interval_rejected(self, small_app):
        with pytest.raises(InvalidApplicationError):
            small_app.work_sum(2, 1)

    def test_comm_to_work_ratio(self):
        app = PipelineApplication([10.0], [5.0, 5.0])
        assert app.comm_to_work_ratio == pytest.approx(1.0)
        zero_work = PipelineApplication([0.0], [5.0, 5.0])
        assert zero_work.comm_to_work_ratio == float("inf")


class TestConstructors:
    def test_homogeneous_constructor(self):
        app = PipelineApplication.homogeneous(5, work=2.0, comm=3.0)
        assert app.n_stages == 5
        assert np.all(app.works == 2.0)
        assert np.all(app.comm_sizes == 3.0)

    def test_homogeneous_rejects_zero_stages(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication.homogeneous(0)

    def test_from_stages_round_trip(self, small_app):
        rebuilt = PipelineApplication.from_stages(
            small_app.stages(), final_output=small_app.comm(small_app.n_stages)
        )
        assert rebuilt == small_app

    def test_from_stages_mismatched_sizes_rejected(self):
        stages = [
            Stage(index=0, work=1.0, input_size=1.0, output_size=2.0),
            Stage(index=1, work=1.0, input_size=3.0, output_size=4.0),
        ]
        with pytest.raises(InvalidApplicationError):
            PipelineApplication.from_stages(stages, final_output=4.0)

    def test_subchain(self, small_app):
        sub = small_app.subchain(1, 2)
        assert sub.n_stages == 2
        assert list(sub.works) == [2.0, 6.0]
        assert list(sub.comm_sizes) == [4.0, 6.0, 2.0]

    def test_subchain_invalid_interval(self, small_app):
        with pytest.raises(InvalidApplicationError):
            small_app.subchain(3, 1)


class TestEqualityAndRepr:
    def test_equality_and_hash(self):
        a = PipelineApplication([1, 2], [1, 2, 3])
        b = PipelineApplication([1, 2], [1, 2, 3])
        c = PipelineApplication([1, 3], [1, 2, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not an app"

    def test_repr_and_describe(self, small_app):
        assert "n_stages=4" in repr(small_app)
        described = small_app.describe()
        assert "S1" in described and "S4" in described
