"""The anytime local-search solver family: behaviour, budgets, determinism.

Four contracts are under test:

* **refinement** — :func:`repro.solvers.local_search.refine` never worsens
  its seed mapping under the lexicographic objective key, terminates at a
  local optimum, and honours ``max_steps`` exactly;
* **budget plumbing** — anytime solvers demand a budget everywhere
  (``default_request``, the CLI, the spec layer) and drop cleanly out of
  budget-less group selections (``solvers_for_platform``, ``batch``);
* **determinism** — same seed and step budget ⇒ byte-identical
  ``SolveResult`` at any worker count and under cold/warm caches, while
  wall-clock ``time_budget`` runs bypass the cache entirely;
* **corpus** — the curated ``local-search-improves-seed`` fixtures really
  are instances where the search strictly improves on its seed heuristic.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.cache import SolveCache
from repro.cli import main
from repro.core.costs import evaluate, optimal_latency_mapping, period_lower_bound
from repro.core.exceptions import ConfigurationError
from repro.generators.experiments import experiment_config, generate_instances
from repro.scenarios import load_corpus
from repro.solvers import (
    DEFAULT_STEP_BUDGET,
    Capability,
    Objective,
    SolveRequest,
    get_solver,
    objective_key,
    random_seed_mapping,
    refine,
    solve_many,
    solve_with_cache,
    solvers_for_platform,
)

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
LS_NAMES = ("local-search-h1", "local-search-h6", "local-search-random")


@pytest.fixture(scope="module")
def instances():
    config = experiment_config("E2", 6, 5, n_instances=4)
    return generate_instances(config, seed=11)


def _tight_period_bound(app, platform) -> float:
    """A period bound between the lower bound and the Lemma 1 cycle time."""
    ev = evaluate(app, platform, optimal_latency_mapping(app, platform))
    return max(0.5 * (period_lower_bound(app, platform) + ev.period), 1e-6)


class TestRefine:
    def test_zero_steps_returns_the_seed(self, instances):
        inst = instances[0]
        app, platform = inst.application, inst.platform
        mapping = optimal_latency_mapping(app, platform)
        ev = evaluate(app, platform, mapping)
        outcome = refine(
            app, platform, mapping, objective=Objective.MIN_LATENCY, max_steps=0
        )
        assert outcome.steps == 0
        assert outcome.mapping == mapping
        assert (outcome.period, outcome.latency) == (ev.period, ev.latency)
        assert outcome.history == ((ev.period, ev.latency),)

    def test_history_keys_strictly_decrease(self, instances):
        inst = instances[0]
        app, platform = inst.application, inst.platform
        bound = _tight_period_bound(app, platform)
        outcome = refine(
            app,
            platform,
            random_seed_mapping(app, platform),
            objective=Objective.MIN_LATENCY_FOR_PERIOD,
            bound=bound,
            max_steps=DEFAULT_STEP_BUDGET,
        )
        keys = [
            objective_key(p, l, Objective.MIN_LATENCY_FOR_PERIOD, bound)
            for p, l in outcome.history
        ]
        assert len(outcome.history) == outcome.steps + 1
        assert all(b < a for a, b in zip(keys, keys[1:]))

    def test_unbudgeted_run_reaches_a_local_optimum(self, instances):
        inst = instances[1]
        app, platform = inst.application, inst.platform
        bound = _tight_period_bound(app, platform)
        outcome = refine(
            app,
            platform,
            random_seed_mapping(app, platform),
            objective=Objective.MIN_LATENCY_FOR_PERIOD,
            bound=bound,
        )
        # a second pass from the optimum finds nothing left to improve
        again = refine(
            app,
            platform,
            outcome.mapping,
            objective=Objective.MIN_LATENCY_FOR_PERIOD,
            bound=bound,
        )
        assert again.steps == 0
        assert again.mapping == outcome.mapping

    def test_unknown_objective_rejected(self, instances):
        inst = instances[0]
        with pytest.raises(ConfigurationError):
            refine(
                inst.application,
                inst.platform,
                optimal_latency_mapping(inst.application, inst.platform),
                objective="maximise-throughput",
            )

    def test_random_seed_mapping_is_a_pure_function_of_the_instance(
        self, instances
    ):
        inst = instances[2]
        a = random_seed_mapping(inst.application, inst.platform)
        b = random_seed_mapping(inst.application, inst.platform)
        assert a == b
        a.validate(inst.application, inst.platform)


class TestSolvers:
    def test_registered_with_anytime_capability(self):
        for name in LS_NAMES:
            solver = get_solver(name)
            assert Capability.ANYTIME in solver.capabilities
            assert solver.needs_budget
            assert solver.family == "extension"

    def test_default_request_without_budget_raises(self):
        with pytest.raises(ConfigurationError, match="anytime"):
            get_solver("local-search-h1").default_request(period_bound=5.0)

    def test_never_worse_than_seed_and_provenance(self, instances):
        for inst in instances:
            app, platform = inst.application, inst.platform
            bound = _tight_period_bound(app, platform)
            result = get_solver("local-search-h1").run(
                app, platform, period_bound=bound, max_steps=DEFAULT_STEP_BUDGET
            )
            details = result.details
            assert details["seed_solver"] == "Sp mono P"
            seed = get_solver("H1").run(app, platform, period_bound=bound)
            assert details["seed_period"] == seed.period
            assert details["seed_latency"] == seed.latency
            key_seed = objective_key(
                seed.period, seed.latency, result.objective, bound
            )
            key_result = objective_key(
                result.period, result.latency, result.objective, bound
            )
            # never worse, at the 1e-9 same-kernel tolerance: the seed's
            # self-reported metrics and the move engine's batch-exact
            # recomputation of the same mapping may differ by an ulp
            assert key_result <= key_seed or all(
                a == pytest.approx(b, rel=1e-9, abs=1e-12)
                for a, b in zip(key_result, key_seed)
            )
            # history = seed trajectory + one point per improving move
            assert len(result.history) >= len(seed.history) + 1
            assert details["steps"] >= 0

    def test_max_steps_truncates_the_search(self, instances):
        inst = instances[0]
        app, platform = inst.application, inst.platform
        full = get_solver("local-search-random").run(
            app, platform, max_steps=DEFAULT_STEP_BUDGET
        )
        if full.details["steps"] < 2:
            pytest.skip("instance converges in fewer than 2 steps")
        capped = get_solver("local-search-random").run(app, platform, max_steps=1)
        assert capped.details["steps"] == 1
        key = objective_key(capped.period, capped.latency, capped.objective, None)
        full_key = objective_key(full.period, full.latency, full.objective, None)
        assert full_key < key  # more budget, strictly better local optimum

    def test_solve_without_budget_raises(self, instances):
        inst = instances[0]
        with pytest.raises(ConfigurationError, match="anytime"):
            get_solver("local-search-h1").run(
                inst.application, inst.platform, period_bound=5.0
            )


class TestInapplicableSolverPath:
    """Satellite fix: budget-less selections skip anytime solvers cleanly."""

    def test_solvers_for_platform_skips_without_request(self, instances):
        platform = instances[0].platform
        names = {s.name for s in solvers_for_platform(platform, "all")}
        assert not names & set(LS_NAMES)

    def test_solvers_for_platform_skips_budget_less_request(self, instances):
        platform = instances[0].platform
        request = SolveRequest.fixed_period(5.0)
        names = {
            s.name for s in solvers_for_platform(platform, "all", request=request)
        }
        assert not names & set(LS_NAMES)

    def test_solvers_for_platform_includes_budgeted_request(self, instances):
        platform = instances[0].platform
        request = SolveRequest.fixed_period(5.0, max_steps=8)
        names = {
            s.name for s in solvers_for_platform(platform, "all", request=request)
        }
        assert {"local-search-h1", "local-search-h6", "local-search-random"} <= names

    def test_solve_cli_group_skips_with_note(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "4", "2", "1",
                "--solver", "extensions",
                "--period", "6",
                "--latency", "40",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "LS-H1" in out
        assert "needs --max-steps" in out

    def test_solve_cli_single_solver_requires_budget(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "4", "2", "1",
                "--solver", "local-search-h1",
                "--period", "6",
            ]
        )
        assert rc == 2
        assert "needs --max-steps" in capsys.readouterr().err

    def test_solve_cli_runs_with_max_steps(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "4", "2", "1",
                "--solver", "local-search-h1",
                "--period", "6",
                "--max-steps", "16",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "local-search-h1" in out

    def test_batch_cli_skips_without_budget_and_runs_with_it(self, capsys):
        base = [
            "batch",
            "--family", "E2",
            "--stages", "5",
            "--processors", "4",
            "--instances", "2",
            "--solver", "local-search-random",
        ]
        rc = main(base)
        captured = capsys.readouterr()
        assert rc == 2
        assert "needs --max-steps" in captured.err
        rc = main(base + ["--max-steps", "8"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "LS-R" in captured.out  # the batch table prints solver keys


class TestDeterminism:
    """Same seed + step budget ⇒ byte-identical results, however executed."""

    def _identities(self, outcome):
        return [
            pickle.dumps(r.identity()) for row in outcome.results for r in row
        ]

    def test_serial_equals_pooled(self, instances):
        serial = solve_many(
            instances,
            LS_NAMES,
            period_bound=8.0,
            latency_bound=60.0,
            max_steps=32,
        )
        pooled = solve_many(
            instances,
            LS_NAMES,
            period_bound=8.0,
            latency_bound=60.0,
            max_steps=32,
            workers=3,
            batch_size=2,
        )
        assert self._identities(serial) == self._identities(pooled)

    def test_cold_and_warm_cache_identical(self, instances):
        cache = SolveCache()
        kwargs = dict(period_bound=8.0, latency_bound=60.0, max_steps=32)
        cold = solve_many(instances, LS_NAMES, cache=cache, **kwargs)
        warm = solve_many(instances, LS_NAMES, cache=cache, **kwargs)
        assert self._identities(cold) == self._identities(warm)
        assert warm.stats.n_solved == 0
        assert warm.stats.n_cache_hits == len(instances) * len(LS_NAMES)

    def test_time_budget_bypasses_the_cache(self, instances):
        cache = SolveCache()
        kwargs = dict(period_bound=8.0, latency_bound=60.0, time_budget=0.05)
        first = solve_many(instances, LS_NAMES, cache=cache, **kwargs)
        second = solve_many(instances, LS_NAMES, cache=cache, **kwargs)
        assert first.stats.n_cache_hits == 0
        assert second.stats.n_cache_hits == 0
        assert second.stats.n_solved == second.stats.n_unique

    def test_scalar_cache_round_trip(self, instances):
        inst = instances[0]
        solver = get_solver("local-search-h1")
        request = solver.default_request(period_bound=8.0, max_steps=16)
        cache = SolveCache()
        cold = solve_with_cache(
            solver, inst.application, inst.platform, request, cache
        )
        warm = solve_with_cache(
            solver, inst.application, inst.platform, request, cache
        )
        assert not cold.cache_hit and warm.cache_hit
        assert cold.identity() == warm.identity()

    def test_budget_is_part_of_the_request_identity(self):
        a = SolveRequest.fixed_period(5.0, max_steps=8)
        b = SolveRequest.fixed_period(5.0, max_steps=16)
        plain = SolveRequest.fixed_period(5.0)
        assert a.canonical_hash() != b.canonical_hash()
        assert a.canonical_hash() != plain.canonical_hash()


class TestCorpusImprovements:
    """The curated fixtures where local search strictly beats its seed."""

    def _entries(self):
        return [
            entry
            for entry in load_corpus(CORPUS_DIR)
            if entry.check == "local-search-improves-seed"
        ]

    def test_at_least_three_fixtures_exist(self):
        assert len(self._entries()) >= 3

    def test_local_search_strictly_improves_on_its_seed(self):
        for entry in self._entries():
            app, platform = entry.application, entry.platform
            if platform.is_communication_homogeneous:
                name = "local-search-h1"
                bound = _tight_period_bound(app, platform)
                bounds = {"period_bound": bound}
            else:
                name = "local-search-random"
                bound = None
                bounds = {}
            result = get_solver(name).run(
                app, platform, max_steps=DEFAULT_STEP_BUDGET, **bounds
            )
            details = result.details
            assert details["steps"] >= 1, f"{entry.label}: search never moved"
            key_seed = objective_key(
                details["seed_period"],
                details["seed_latency"],
                result.objective,
                bound,
            )
            key_result = objective_key(
                result.period, result.latency, result.objective, bound
            )
            assert key_result < key_seed, (
                f"{entry.label}: {name} did not strictly improve on "
                f"{details['seed_solver']}"
            )
