"""Canonical identity properties: rename/dtype invariance, corpus stability.

The `core/identity.py` promotion (out of ``scenarios/hashing.py``) is only
safe if the digests are bit-for-bit unchanged — the regression corpus under
``tests/corpus/`` embeds them in file names and documents.  These tests pin
down the contract:

* hypothesis properties — ``canonical_hash()`` / ``instance_digest`` are
  invariant under stage/processor/instance renaming and under dtype round
  trips (int lists, ``float64`` arrays, ``float32`` arrays with exactly
  representable values, and the serialisation dict round trip);
* the digest-assembly optimisation (concatenating the cached per-object
  payloads) is byte-identical to hashing the canonical document directly;
* every corpus fixture's stored digest matches the promoted implementation,
  and the legacy ``repro.scenarios.hashing`` module re-exports the very
  same functions.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.application import PipelineApplication
from repro.core.identity import (
    canonical_document_payload,
    canonical_instance_document,
    instance_digest,
)
from repro.core.platform import Platform
from repro.core.serialization import (
    application_from_dict,
    application_to_dict,
    platform_from_dict,
    platform_to_dict,
)
from repro.scenarios import hashing as legacy_hashing
from repro.scenarios.corpus import load_corpus
from repro.solvers.base import SolveRequest

CORPUS_DIR = Path(__file__).parent / "corpus"

#: integer-valued numbers are exactly representable in float32 and float64,
#: so dtype round trips must leave the canonical digests untouched
_INT = st.integers(0, 40)
_POS_INT = st.integers(1, 20)


@st.composite
def _instance_numbers(draw):
    n = draw(st.integers(1, 5))
    p = draw(st.integers(1, 4))
    works = draw(st.lists(_INT, min_size=n, max_size=n))
    comms = draw(st.lists(_INT, min_size=n + 1, max_size=n + 1))
    speeds = draw(st.lists(_POS_INT, min_size=p, max_size=p))
    bandwidth = draw(_POS_INT)
    return works, comms, speeds, bandwidth


class TestRenameInvariance:
    @settings(max_examples=30, deadline=None)
    @given(numbers=_instance_numbers(), name_a=st.text(max_size=8), name_b=st.text(max_size=8))
    def test_names_never_reach_any_digest(self, numbers, name_a, name_b):
        works, comms, speeds, bandwidth = numbers
        app_a = PipelineApplication(works, comms, name=name_a or "a")
        app_b = PipelineApplication(works, comms, name=name_b or "b")
        plat_a = Platform(speeds, bandwidth, name=name_a or "a")
        plat_b = Platform(speeds, bandwidth, name=name_b or "b")
        assert app_a.canonical_hash() == app_b.canonical_hash()
        assert plat_a.canonical_hash() == plat_b.canonical_hash()
        assert instance_digest(app_a, plat_a) == instance_digest(app_b, plat_b)

    def test_renaming_after_construction_never_changes_the_digest(self):
        app = PipelineApplication([3, 1], [1, 1, 1], name="before")
        platform = Platform([2, 1], 4.0, name="before")
        digest = instance_digest(app, platform)
        app.name = "after"
        platform.name = "after"
        assert instance_digest(app, platform) == digest


class TestDtypeRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(numbers=_instance_numbers())
    def test_construction_dtype_is_invisible(self, numbers):
        works, comms, speeds, bandwidth = numbers
        variants = [
            (works, comms, speeds, float(bandwidth)),
            (
                np.asarray(works, dtype=np.float64),
                np.asarray(comms, dtype=np.float64),
                np.asarray(speeds, dtype=np.float64),
                bandwidth,
            ),
            (
                np.asarray(works, dtype=np.float32),
                np.asarray(comms, dtype=np.float32),
                np.asarray(speeds, dtype=np.int64),
                np.float32(bandwidth),
            ),
        ]
        digests = {
            instance_digest(
                PipelineApplication(w, c), Platform(s, float(b))
            )
            for w, c, s, b in variants
        }
        assert len(digests) == 1

    @settings(max_examples=30, deadline=None)
    @given(numbers=_instance_numbers())
    def test_serialisation_round_trip_preserves_hashes(self, numbers):
        works, comms, speeds, bandwidth = numbers
        app = PipelineApplication(works, comms, name="original")
        platform = Platform(speeds, float(bandwidth), name="original")
        app_rt = application_from_dict(application_to_dict(app))
        plat_rt = platform_from_dict(platform_to_dict(platform))
        assert app_rt.canonical_hash() == app.canonical_hash()
        assert plat_rt.canonical_hash() == platform.canonical_hash()
        assert instance_digest(app_rt, plat_rt) == instance_digest(app, platform)


class TestDigestAssembly:
    @settings(max_examples=30, deadline=None)
    @given(numbers=_instance_numbers())
    def test_cached_payload_concat_matches_document_hash(self, numbers):
        """The per-object payload assembly equals hashing the full document."""
        works, comms, speeds, bandwidth = numbers
        app = PipelineApplication(works, comms)
        platform = Platform(speeds, float(bandwidth))
        document = canonical_instance_document(app, platform)
        direct = hashlib.sha256(canonical_document_payload(document)).hexdigest()
        assert instance_digest(app, platform) == direct
        # and through the stdlib alone, guarding the encoding convention
        stdlib = hashlib.sha256(
            json.dumps(document, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        assert direct == stdlib

    def test_value_changes_always_change_the_digest(self):
        app = PipelineApplication([3, 1], [1, 1, 1])
        platform = Platform([2, 1], 4.0)
        base = instance_digest(app, platform)
        assert instance_digest(
            PipelineApplication([3, 2], [1, 1, 1]), platform
        ) != base
        assert instance_digest(app, Platform([2, 1], 5.0)) != base


class TestCorpusStability:
    def test_legacy_module_reexports_the_core_functions(self):
        assert legacy_hashing.instance_digest is instance_digest
        assert (
            legacy_hashing.canonical_instance_document
            is canonical_instance_document
        )

    def test_every_fixture_digest_survives_the_promotion(self):
        entries = load_corpus(CORPUS_DIR)
        assert len(entries) == 11, "corpus fixtures changed; update this count"
        for entry in entries:
            stored = json.loads(entry.path.read_text(encoding="utf-8"))["digest"]
            recomputed = instance_digest(entry.application, entry.platform)
            assert recomputed == stored == entry.digest
            assert entry.path.name.split("-")[-1] == f"{stored[:12]}.json"


class TestSolveRequestHash:
    def test_equal_requests_share_one_digest(self):
        a = SolveRequest.fixed_period(4.0)
        b = SolveRequest.fixed_period(4.0)
        assert a.canonical_hash() == b.canonical_hash()
        # cached on the instance after the first call
        assert a.canonical_hash() is a.canonical_hash()

    def test_objective_and_bounds_reach_the_digest(self):
        digests = {
            SolveRequest.fixed_period(4.0).canonical_hash(),
            SolveRequest.fixed_period(5.0).canonical_hash(),
            SolveRequest.fixed_latency(4.0).canonical_hash(),
            SolveRequest.min_period().canonical_hash(),
            SolveRequest.min_latency().canonical_hash(),
        }
        assert len(digests) == 5
