"""Unit tests for the NMWTS problem container and brute-force solver."""

from __future__ import annotations

import pytest

from repro.complexity.nmwts import (
    NMWTSInstance,
    NMWTSSolution,
    solve_nmwts_bruteforce,
    verify_nmwts,
)


def yes_instance() -> NMWTSInstance:
    """x_i + y_i = z_i with the identity permutations (an easy YES instance)."""
    return NMWTSInstance.from_lists([1, 2, 3], [2, 3, 1], [3, 5, 4])


def shuffled_yes_instance() -> NMWTSInstance:
    """YES instance requiring non-identity permutations."""
    # x = [1, 2], y = [5, 1], z = [3, 6]: 1+5=6, 2+1=3
    return NMWTSInstance.from_lists([1, 2], [5, 1], [3, 6])


def no_instance() -> NMWTSInstance:
    """Sums match but no perfect matching exists."""
    # x = [0, 0], y = [1, 3], z = [0, 4]: need 0+y=z pairs; {1,3} vs {0,4} fails
    return NMWTSInstance.from_lists([0, 0], [1, 3], [0, 4])


class TestInstance:
    def test_basic_properties(self):
        inst = yes_instance()
        assert inst.m == 3
        assert inst.max_value == 5
        assert inst.sums_match

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            NMWTSInstance.from_lists([1], [1, 2], [2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NMWTSInstance.from_lists([], [], [])

    def test_sums_match_detects_mismatch(self):
        inst = NMWTSInstance.from_lists([1], [1], [5])
        assert not inst.sums_match


class TestVerify:
    def test_valid_solution(self):
        inst = yes_instance()
        solution = NMWTSSolution(sigma1=(0, 1, 2), sigma2=(0, 1, 2))
        assert verify_nmwts(inst, solution)

    def test_invalid_pairing_rejected(self):
        inst = yes_instance()
        solution = NMWTSSolution(sigma1=(1, 0, 2), sigma2=(0, 1, 2))
        assert not verify_nmwts(inst, solution)

    def test_non_permutation_rejected(self):
        inst = yes_instance()
        assert not verify_nmwts(inst, NMWTSSolution((0, 0, 1), (0, 1, 2)))
        assert not verify_nmwts(inst, NMWTSSolution((0, 1), (0, 1)))


class TestBruteForce:
    def test_solves_yes_instance(self):
        inst = yes_instance()
        solution = solve_nmwts_bruteforce(inst)
        assert solution is not None
        assert verify_nmwts(inst, solution)

    def test_solves_shuffled_yes_instance(self):
        inst = shuffled_yes_instance()
        solution = solve_nmwts_bruteforce(inst)
        assert solution is not None
        assert verify_nmwts(inst, solution)

    def test_detects_no_instance(self):
        assert solve_nmwts_bruteforce(no_instance()) is None

    def test_detects_sum_mismatch_quickly(self):
        inst = NMWTSInstance.from_lists([1, 1], [1, 1], [10, 10])
        assert solve_nmwts_bruteforce(inst) is None

    def test_random_yes_instances(self, rng):
        """Instances built from a hidden matching are always solved."""
        for _ in range(10):
            m = int(rng.integers(1, 6))
            x = rng.integers(0, 6, size=m)
            y = rng.integers(0, 6, size=m)
            perm1 = rng.permutation(m)
            perm2 = rng.permutation(m)
            z = [0] * m
            for i in range(m):
                z[perm2[i]] = int(x[i] + y[perm1[i]])
            inst = NMWTSInstance.from_lists(list(x), list(y), z)
            solution = solve_nmwts_bruteforce(inst)
            assert solution is not None
            assert verify_nmwts(inst, solution)
