"""Tests of the deal-skeleton (replication) extension."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate
from repro.core.exceptions import InvalidMappingError
from repro.core.mapping import Interval, IntervalMapping
from repro.extensions.replication import (
    ReplicatedInterval,
    ReplicatedMapping,
    evaluate_replicated,
    from_interval_mapping,
    greedy_replication,
)
from repro.heuristics import get_heuristic
from tests.conftest import random_instance


class TestContainers:
    def test_replicated_interval_validation(self):
        with pytest.raises(InvalidMappingError):
            ReplicatedInterval(Interval(0, 1), processors=())
        with pytest.raises(InvalidMappingError):
            ReplicatedInterval(Interval(0, 1), processors=(1, 1))
        assert ReplicatedInterval(Interval(0, 1), (0, 2)).replication_factor == 2

    def test_replicated_mapping_validation(self):
        good = ReplicatedMapping(
            (
                ReplicatedInterval(Interval(0, 1), (0,)),
                ReplicatedInterval(Interval(2, 3), (1, 2)),
            )
        )
        assert good.n_stages == 4
        assert good.used_processors == {0, 1, 2}
        with pytest.raises(InvalidMappingError):
            ReplicatedMapping(
                (
                    ReplicatedInterval(Interval(0, 1), (0,)),
                    ReplicatedInterval(Interval(3, 4), (1,)),
                )
            )
        with pytest.raises(InvalidMappingError):
            ReplicatedMapping(
                (
                    ReplicatedInterval(Interval(0, 1), (0,)),
                    ReplicatedInterval(Interval(2, 3), (0,)),
                )
            )

    def test_from_interval_mapping_round_trip(self, small_app, small_platform):
        mapping = IntervalMapping([(0, 1), (2, 3)], [0, 1])
        lifted = from_interval_mapping(mapping)
        assert lifted.n_intervals == 2
        assert all(item.replication_factor == 1 for item in lifted.assignments)


class TestCostModel:
    def test_degenerate_replication_matches_plain_costs(self, small_app, small_platform):
        """Replication factor 1 must reproduce eqs. (1) and (2) exactly."""
        mapping = IntervalMapping([(0, 1), (2, 3)], [0, 1])
        plain = evaluate(small_app, small_platform, mapping)
        lifted = evaluate_replicated(
            small_app, small_platform, from_interval_mapping(mapping)
        )
        assert lifted.period == pytest.approx(plain.period)
        assert lifted.latency == pytest.approx(plain.latency)

    def test_replication_divides_interval_period(self, small_app, small_platform):
        single = ReplicatedMapping((ReplicatedInterval(Interval(0, 3), (0,)),))
        duo = ReplicatedMapping((ReplicatedInterval(Interval(0, 3), (0, 1)),))
        ev_single = evaluate_replicated(small_app, small_platform, single)
        ev_duo = evaluate_replicated(small_app, small_platform, duo)
        # two replicas: the slower one (speed 2) bounds the cycle, divided by 2
        assert ev_duo.period == pytest.approx(
            (10 / 10 + 20 / 2.0 + 10 / 10) / 2
        )
        assert ev_single.period == pytest.approx(7.0)

    def test_replication_latency_uses_slowest_replica(self, small_app, small_platform):
        duo = ReplicatedMapping((ReplicatedInterval(Interval(0, 3), (0, 2)),))
        ev = evaluate_replicated(small_app, small_platform, duo)
        # slowest replica has speed 1
        assert ev.latency == pytest.approx(10 / 10 + 20 / 1.0 + 10 / 10)

    def test_validation_against_instance(self, small_app, small_platform):
        with pytest.raises(InvalidMappingError):
            evaluate_replicated(
                small_app,
                small_platform,
                ReplicatedMapping((ReplicatedInterval(Interval(0, 2), (0,)),)),
            )
        with pytest.raises(InvalidMappingError):
            evaluate_replicated(
                small_app,
                small_platform,
                ReplicatedMapping((ReplicatedInterval(Interval(0, 3), (9,)),)),
            )


class TestGreedyReplication:
    def test_replication_never_hurts_the_period(self):
        for seed in range(4):
            app, platform = random_instance(8, 8, seed=seed, family="E3")
            base = get_heuristic("H1").run(app, platform, period_bound=1e-9)
            replicated, ev = greedy_replication(app, platform, base.mapping)
            assert ev.period <= base.period + 1e-9

    def test_period_bound_stops_early(self):
        app, platform = random_instance(8, 8, seed=1, family="E3")
        base = get_heuristic("H1").run(app, platform, period_bound=1e-9)
        loose_bound = base.period  # already satisfied: no replication needed
        replicated, ev = greedy_replication(
            app, platform, base.mapping, period_bound=loose_bound
        )
        assert all(item.replication_factor == 1 for item in replicated.assignments)

    def test_max_replicas_cap(self):
        app, platform = random_instance(4, 8, seed=2, family="E3")
        base_mapping = IntervalMapping.single_processor(
            app.n_stages, platform.fastest_processor
        )
        replicated, _ = greedy_replication(
            app, platform, base_mapping, max_replicas=2
        )
        assert max(i.replication_factor for i in replicated.assignments) <= 2

    def test_uses_only_unused_processors(self):
        app, platform = random_instance(8, 6, seed=3, family="E3")
        base = get_heuristic("H1").run(app, platform, period_bound=1e-9)
        replicated, _ = greedy_replication(app, platform, base.mapping)
        all_procs = [u for item in replicated.assignments for u in item.processors]
        assert len(all_procs) == len(set(all_procs))
