"""Tests of the heuristic registry."""

from __future__ import annotations

import pytest

from repro.heuristics import (
    HEURISTIC_CLASSES,
    Objective,
    all_heuristics,
    fixed_latency_heuristics,
    fixed_period_heuristics,
    get_heuristic,
    heuristic_names,
)
from repro.heuristics.registry import resolve_heuristics


class TestRegistryContents:
    def test_six_heuristics_registered(self):
        assert len(HEURISTIC_CLASSES) == 6
        assert len(all_heuristics()) == 6

    def test_table1_keys_in_order(self):
        assert [cls.key for cls in HEURISTIC_CLASSES] == [
            "H1",
            "H2",
            "H3",
            "H4",
            "H5",
            "H6",
        ]

    def test_paper_names(self):
        assert heuristic_names() == [
            "Sp mono P",
            "3-Explo mono",
            "3-Explo bi",
            "Sp bi P",
            "Sp mono L",
            "Sp bi L",
        ]

    def test_objective_split(self):
        assert len(fixed_period_heuristics()) == 4
        assert len(fixed_latency_heuristics()) == 2
        for h in fixed_period_heuristics():
            assert h.objective == Objective.MIN_LATENCY_FOR_PERIOD
        for h in fixed_latency_heuristics():
            assert h.objective == Objective.MIN_PERIOD_FOR_LATENCY


class TestLookup:
    @pytest.mark.parametrize(
        "query,expected_key",
        [
            ("H1", "H1"),
            ("h3", "H3"),
            ("Sp mono P", "H1"),
            ("sp-mono-p", "H1"),
            ("SP BI L", "H6"),
            ("3-Explo mono", "H2"),
            ("3explo bi", "H3"),
            ("SplittingBiPeriod", "H4"),
        ],
    )
    def test_lookup_variants(self, query, expected_key):
        assert get_heuristic(query).key == expected_key

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_heuristic("does-not-exist")

    def test_instances_are_fresh(self):
        assert get_heuristic("H1") is not get_heuristic("H1")

    def test_resolve_none_gives_all(self):
        assert [h.key for h in resolve_heuristics(None)] == [
            "H1",
            "H2",
            "H3",
            "H4",
            "H5",
            "H6",
        ]

    def test_resolve_explicit_list(self):
        assert [h.key for h in resolve_heuristics(["H6", "H1"])] == ["H6", "H1"]
