"""The persistent :class:`~repro.utils.parallel.WorkerPool`.

Contract: :meth:`WorkerPool.map` returns exactly what a serial loop
returns, in input order, at any worker count — and the processes survive
across calls (that amortisation is why the solver daemon holds one).
"""

from __future__ import annotations

import pickle

import pytest

from repro.generators.experiments import experiment_config, generate_instances
from repro.solvers.service import solve_many
from repro.utils.parallel import WorkerPool


def _square(x: int) -> int:
    return x * x


class _Payload:
    """A minimal installable payload (content-compared like the shipment)."""

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.installed = 0

    def install(self) -> None:
        self.installed += 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Payload) and other.tag == self.tag

    def __hash__(self) -> int:  # pragma: no cover - not used
        return hash(self.tag)


class TestWorkerPool:
    def test_serial_pool_is_a_plain_loop(self):
        with WorkerPool(workers=1) as pool:
            assert pool.workers == 1
            assert pool.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]
            assert not pool.closed

    def test_parallel_results_match_serial_in_order(self):
        items = list(range(23))
        with WorkerPool(workers=2) as pool:
            assert pool.map(_square, items, batch_size=3) == [
                _square(i) for i in items
            ]

    def test_pool_survives_many_map_calls(self):
        with WorkerPool(workers=2) as pool:
            for _ in range(3):
                assert pool.map(_square, range(8)) == [
                    _square(i) for i in range(8)
                ]

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(workers=2)
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_square, range(4))
        pool.close()  # idempotent

    def test_serial_payload_installed_in_process(self):
        payload = _Payload("a")
        with WorkerPool(workers=1) as pool:
            pool.map(_square, range(3), payload=payload)
        assert payload.installed == 1

    def test_repr_shows_state(self):
        pool = WorkerPool(workers=2)
        assert "live" in repr(pool)
        pool.close()
        assert "closed" in repr(pool)


class TestSolveManyWithPool:
    def test_pooled_solve_many_is_byte_identical(self):
        config = experiment_config("E1", 8, 6, n_instances=6)
        instances = generate_instances(config, seed=5)
        pairs = [(inst.application, inst.platform) for inst in instances]
        serial = solve_many(pairs, ["H1"], period_bound=12.0)
        with WorkerPool(workers=2) as pool:
            pooled = solve_many(
                pairs, ["H1"], period_bound=12.0, workers=2, pool=pool,
            )
        assert [
            pickle.dumps(r.identity()) for row in pooled.results for r in row
        ] == [
            pickle.dumps(r.identity()) for row in serial.results for r in row
        ]
        assert pooled.stats.n_solved == serial.stats.n_solved
