"""Differential oracle and fuzz harness: clean streams pass, planted bugs fail.

Three layers are under test:

* a fuzz slice over every scenario family reports **zero** disagreements and
  is byte-identical at any worker count (the determinism contract of the
  report itself);
* the oracle actually *detects* defects: a planted lying solver (wrong
  metrics / optimum-beating claims) produces failures, which the harness
  shrinks and persists into a loadable, digest-consistent corpus entry;
* the structural sub-checks flag corrupt results in isolation.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.scenarios.differential as differential_module
from repro.scenarios import (
    differential_check,
    generate_scenarios,
    load_corpus,
    render_fuzz_report,
    run_fuzz,
)
from repro.solvers.registry import get_solver as real_get_solver


class TestCleanStream:
    def test_fuzz_slice_is_clean_and_worker_invariant(self):
        serial = run_fuzz(count=48, seed=0)
        assert serial.ok, render_fuzz_report(serial)
        assert serial.count == 48
        assert sum(serial.per_family.values()) == 48
        assert serial.n_comparisons > 1000
        pooled = run_fuzz(count=48, seed=0, workers=3, batch_size=5)
        assert render_fuzz_report(serial) == render_fuzz_report(pooled)

    def test_single_instance_report_shape(self):
        scenario = generate_scenarios(1, "heterogeneous-chain", seed=1)[0]
        report = differential_check(scenario.application, scenario.platform)
        assert report.ok
        assert report.failures == ()
        assert report.failed_checks() == ()
        assert report.n_comparisons > 10


class _LyingSolver:
    """Wraps a real solver and corrupts the reported metrics."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def run(self, app, platform, **bounds):
        result = self._inner.run(app, platform, **bounds)
        # claim an impossible solution: zero period and zero latency
        return dataclasses.replace(result, period=0.0, latency=0.0, feasible=True)


@pytest.fixture
def lying_h1(monkeypatch):
    def fake_get_solver(name):
        solver = real_get_solver(name)
        if solver.key == "H1":
            return _LyingSolver(solver)
        return solver

    monkeypatch.setattr(differential_module, "get_solver", fake_get_solver)


class TestPlantedBug:
    def test_oracle_flags_a_lying_solver(self, lying_h1):
        scenario = generate_scenarios(1, "heterogeneous-chain", seed=2)[0]
        report = differential_check(scenario.application, scenario.platform)
        assert not report.ok
        assert "metric-recompute" in report.failed_checks()

    def test_harness_shrinks_and_persists(self, lying_h1, tmp_path):
        corpus_dir = tmp_path / "corpus"
        report = run_fuzz(
            count=2,
            families="heterogeneous-chain",
            seed=2,
            corpus_dir=corpus_dir,
        )
        assert not report.ok
        counterexample = report.counterexamples[0]
        # shrunk hard: a lying H1 lies on every instance, so the minimal
        # counterexample must be tiny
        assert counterexample.application.n_stages <= 2
        assert counterexample.platform.n_processors <= 2
        text = render_fuzz_report(report)
        assert "DISAGREEMENT" in text
        assert counterexample.check in text
        entries = load_corpus(corpus_dir)
        assert entries
        assert entries[0].check == counterexample.check
        assert entries[0].digest == counterexample.digest

    def test_no_shrink_keeps_original_instance(self, lying_h1):
        scenario = generate_scenarios(1, "heterogeneous-chain", seed=2)[0]
        report = run_fuzz(
            count=1, families="heterogeneous-chain", seed=2, shrink=False
        )
        assert not report.ok
        assert report.counterexamples[0].digest == scenario.digest


class _OverclaimingSeed:
    """Wraps a local-search solver and forges impossibly good seed metrics.

    The forged provenance makes the (untouched) refined result look worse
    than its claimed seed, so both local-search invariants must fire: the
    never-worse-than-seed key comparison and the seed-provenance replay.
    """

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def run(self, app, platform, **bounds):
        result = self._inner.run(app, platform, **bounds)
        details = dict(result.details)
        details["seed_period"] = 0.5 * result.period
        details["seed_latency"] = 0.5 * result.latency
        return dataclasses.replace(result, details=details)


@pytest.fixture
def overclaiming_local_search(monkeypatch):
    def fake_get_solver(name):
        solver = real_get_solver(name)
        if solver.name == "local-search-h1":
            return _OverclaimingSeed(solver)
        return solver

    monkeypatch.setattr(differential_module, "get_solver", fake_get_solver)


class TestLocalSearchInvariants:
    def test_oracle_flags_forged_seed_provenance(self, overclaiming_local_search):
        scenario = generate_scenarios(1, "heterogeneous-chain", seed=5)[0]
        report = differential_check(scenario.application, scenario.platform)
        assert not report.ok
        checks = report.failed_checks()
        assert "local-search-worse-than-seed" in checks
        assert "local-search-seed-provenance" in checks

    def test_clean_instance_runs_the_local_search_battery(self):
        """The new checks are live: removing local search drops comparisons."""
        scenario = generate_scenarios(1, "heterogeneous-chain", seed=6)[0]
        full = differential_check(scenario.application, scenario.platform)
        assert full.ok
        trimmed = differential_check(
            scenario.application, scenario.platform, simulate=False
        )
        assert trimmed.ok
        # 4 local-search runs (h1 at two bounds, h6, random) contribute a
        # double-digit share of the comparison count on this instance
        assert full.n_comparisons > 40


class TestStructuralChecks:
    def test_crashing_solver_is_a_finding_not_an_abort(self, monkeypatch):
        class Exploding:
            def __getattr__(self, name):
                return getattr(real_get_solver("H2"), name)

            def run(self, app, platform, **bounds):
                raise RuntimeError("planted crash")

        def fake_get_solver(name):
            solver = real_get_solver(name)
            if solver.key == "H2":
                return Exploding()
            return solver

        monkeypatch.setattr(differential_module, "get_solver", fake_get_solver)
        scenario = generate_scenarios(1, "heterogeneous-chain", seed=3)[0]
        report = differential_check(scenario.application, scenario.platform)
        assert "solver-crash" in report.failed_checks()
        assert any("planted crash" in f.detail for f in report.failures)
