"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_arguments(self):
        args = build_parser().parse_args(
            [
                "solve",
                "--works", "1", "2",
                "--comms", "1", "1", "1",
                "--speeds", "2", "1",
                "--heuristic", "H1",
                "--period", "5",
            ]
        )
        assert args.command == "solve"
        assert args.works == [1.0, 2.0]


class TestSolveCommand:
    def test_solve_fixed_period(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "4", "2", "1",
                "--bandwidth", "10",
                "--heuristic", "H1",
                "--period", "6",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sp mono P" in out
        assert "period" in out

    def test_solve_fixed_latency(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--heuristic", "H5",
                "--latency", "10",
            ]
        )
        assert rc == 0
        assert "Sp mono L" in capsys.readouterr().out

    def test_solve_missing_bound_errors(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--heuristic", "H1",
            ]
        )
        assert rc == 2
        assert "needs --period" in capsys.readouterr().err

    def test_solve_by_registry_name(self, capsys):
        """Exact solvers are reachable through the same subcommand."""
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "2", "2", "2",
                "--solver", "hom-dp-period",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "hom-dp-period" in out and "exact" in out

    def test_solve_brute_force_honours_latency_bound(self, capsys):
        """An opposite-criterion bound is forwarded, not silently dropped."""
        args = [
            "solve",
            "--works", "5", "3", "8", "2",
            "--comms", "10", "4", "6", "2", "10",
            "--speeds", "4", "2", "1",
            "--solver", "BF-P",
        ]

        def objective_lines(text: str) -> list[str]:
            # wall time and mapping layout vary run to run; the objective
            # values are what the bound must change
            return [
                line for line in text.splitlines()
                if line.startswith(("period", "latency"))
            ]

        assert main(args) == 0
        unconstrained = objective_lines(capsys.readouterr().out)
        assert main(args + ["--latency", "7"]) == 0
        bounded = objective_lines(capsys.readouterr().out)
        # the latency bound excludes the unconstrained optimum (3.9, 9.85)
        # on this instance, forcing a different optimal mapping
        assert unconstrained != bounded

    def test_solve_rejects_same_criterion_bound_on_unconstrained_solver(
        self, capsys
    ):
        """--period with a min-period solver is an error, not silently dropped."""
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "2", "2", "2",
                "--solver", "hom-dp-period",
                "--period", "4",
            ]
        )
        assert rc == 2
        assert "--period does not apply" in capsys.readouterr().err

    def test_solve_rejects_unsupported_bound_cleanly(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--solver", "one-to-one-period",
                "--latency", "5",
            ]
        )
        assert rc == 2
        assert "does not take a latency bound" in capsys.readouterr().err

    def test_solve_unknown_solver_suggests(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--solver", "hom-dp-perod",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "did you mean" in err and "hom-dp-period" in err

    def test_solve_all_runs_every_family(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "4", "2", "1",
                "--solver", "all",
                "--period", "6",
                "--latency", "20",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # one row per registered solver, every family represented
        for key in ("H1", "H6", "BM-LP", "BF-P", "O2O-P", "REP", "X1"):
            assert key in out
        assert "heuristic" in out and "exact" in out and "extension" in out
        # homogeneous-only DPs are skipped on this heterogeneous platform
        assert "skipped" in out

    def test_solve_exact_group_on_homogeneous_platform(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "2", "2", "2",
                "--solver", "exact",
                "--period", "8",
                "--latency", "30",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "DP-P" in out and "BM-LP" in out
        assert "(requires identical processor speeds)" not in out


class TestSolversCommand:
    def test_lists_all_families(self, capsys):
        rc = main(["solvers"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("Sp mono P", "hom-dp-period", "greedy-replication"):
            assert name in out
        assert "capabilities" in out

    def test_family_filter(self, capsys):
        rc = main(["solvers", "--family", "exact"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hom-dp-period" in out
        assert "Sp mono P" not in out


class TestParallelFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.batch_size is None

    def test_workers_and_batch_size_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "--workers", "4", "--batch-size", "8"]
        )
        assert args.workers == 4
        assert args.batch_size == 8

    def test_failure_command_has_parallel_flags(self):
        args = build_parser().parse_args(["failure", "--workers", "2"])
        assert args.workers == 2

    def test_sweep_output_identical_for_any_worker_count(self, capsys):
        base = [
            "sweep", "--family", "E1", "--stages", "6", "--processors", "5",
            "--instances", "3", "--thresholds", "3", "--seed", "1",
        ]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2", "--batch-size", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out


class TestExperimentCommands:
    def test_sweep_command(self, capsys):
        rc = main(
            [
                "sweep", "--family", "E1", "--stages", "6", "--processors", "5",
                "--instances", "3", "--thresholds", "3", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sp mono P" in out and "E1" in out

    def test_failure_command(self, capsys):
        rc = main(
            [
                "failure", "--family", "E2", "--stages", "5", "8",
                "--processors", "5", "--instances", "3", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "H1" in out and "n=8" in out

    def test_ablation_command(self, capsys):
        rc = main(
            [
                "ablation", "--family", "E1", "--stages", "6", "--processors", "5",
                "--instances", "2", "--study", "selection-rule",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Ablation" in out

    def test_validate_command(self, capsys):
        rc = main(
            [
                "validate", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--datasets", "20",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rel. error" in out

    def test_validate_with_registry_solver(self, capsys):
        rc = main(
            [
                "validate", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--datasets", "20",
                "--solver", "bitmask-dp-period-for-latency",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "bitmask-dp-period-for-latency" in out and "rel. error" in out

    def test_validate_rejects_group_selectors(self, capsys):
        rc = main(
            [
                "validate", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--solver", "heuristics",
            ]
        )
        assert rc == 2
        assert "single solver" in capsys.readouterr().err

    def test_validate_incompatible_solver_fails_cleanly(self, capsys):
        """A homogeneous-only solver on a heterogeneous stream: no traceback."""
        rc = main(
            [
                "validate", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--solver", "hom-dp-period",
            ]
        )
        assert rc == 2
        assert "identical processor speeds" in capsys.readouterr().err

    def test_validate_unknown_solver_rejected(self, capsys):
        rc = main(
            [
                "validate", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--solver", "nope",
            ]
        )
        assert rc == 2
        assert "unknown solver" in capsys.readouterr().err


class TestVersionFlag:
    def test_version_is_single_sourced(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_setup_py_reads_the_same_version(self):
        import re
        from pathlib import Path

        import repro

        # apply setup.py's exact textual pattern to the real __init__.py, so
        # a reformatting that would break `setup.py`'s _version() fails here
        init_text = (
            Path(repro.__file__)
        ).read_text(encoding="utf-8")
        match = re.search(r'^__version__ = "([^"]+)"$', init_text, re.MULTILINE)
        assert match is not None, "setup.py's version pattern no longer matches"
        assert match.group(1) == repro.__version__


class TestBatchCommand:
    _ARGS = [
        "batch", "--family", "E1", "--stages", "6", "--processors", "5",
        "--instances", "4", "--repeat", "2", "--period", "12",
        "--latency", "60",
    ]

    def test_batch_report_shape(self, capsys):
        rc = main(self._ARGS)
        captured = capsys.readouterr()
        assert rc == 0
        # 4 instances x 2 repeats x 6 heuristics: 48 task rows collapse onto
        # 24 unique (instance, solver) cells
        assert "tasks       : 48 requested, 24 unique after deduplication" in captured.out
        assert "solved 24 of 48 requested task(s) (24 deduplicated" in captured.err

    def test_batch_cold_vs_warm_cache_dir_byte_identical(self, tmp_path, capsys):
        args = self._ARGS + ["--cache-dir", str(tmp_path / "store")]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert cold == warm
        assert "instance" in cold and "period" in cold

    def test_batch_workers_byte_identical(self, capsys):
        assert main(self._ARGS) == 0
        serial = capsys.readouterr().out
        assert main(self._ARGS + ["--workers", "3"]) == 0
        pooled = capsys.readouterr().out
        assert serial == pooled

    def test_batch_skips_inapplicable_solvers(self, capsys):
        rc = main(
            [
                "batch", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--solver", "all", "--period", "12",
                "--latency", "60",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "skipping" in captured.err  # e.g. homogeneous-only DPs

    def test_batch_unknown_solver_rejected(self, capsys):
        rc = main(
            [
                "batch", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--solver", "nope",
            ]
        )
        assert rc == 2
        assert "unknown solver" in capsys.readouterr().err
