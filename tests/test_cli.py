"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_arguments(self):
        args = build_parser().parse_args(
            [
                "solve",
                "--works", "1", "2",
                "--comms", "1", "1", "1",
                "--speeds", "2", "1",
                "--heuristic", "H1",
                "--period", "5",
            ]
        )
        assert args.command == "solve"
        assert args.works == [1.0, 2.0]


class TestSolveCommand:
    def test_solve_fixed_period(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "4", "2", "1",
                "--bandwidth", "10",
                "--heuristic", "H1",
                "--period", "6",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sp mono P" in out
        assert "period" in out

    def test_solve_fixed_latency(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--heuristic", "H5",
                "--latency", "10",
            ]
        )
        assert rc == 0
        assert "Sp mono L" in capsys.readouterr().out

    def test_solve_missing_bound_errors(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--heuristic", "H1",
            ]
        )
        assert rc == 2
        assert "needs --period" in capsys.readouterr().err


class TestExperimentCommands:
    def test_sweep_command(self, capsys):
        rc = main(
            [
                "sweep", "--family", "E1", "--stages", "6", "--processors", "5",
                "--instances", "3", "--thresholds", "3", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sp mono P" in out and "E1" in out

    def test_failure_command(self, capsys):
        rc = main(
            [
                "failure", "--family", "E2", "--stages", "5", "8",
                "--processors", "5", "--instances", "3", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "H1" in out and "n=8" in out

    def test_ablation_command(self, capsys):
        rc = main(
            [
                "ablation", "--family", "E1", "--stages", "6", "--processors", "5",
                "--instances", "2", "--study", "selection-rule",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Ablation" in out

    def test_validate_command(self, capsys):
        rc = main(
            [
                "validate", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--datasets", "20",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rel. error" in out
