"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_arguments(self):
        args = build_parser().parse_args(
            [
                "solve",
                "--works", "1", "2",
                "--comms", "1", "1", "1",
                "--speeds", "2", "1",
                "--heuristic", "H1",
                "--period", "5",
            ]
        )
        assert args.command == "solve"
        assert args.works == [1.0, 2.0]


class TestSolveCommand:
    def test_solve_fixed_period(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3", "8", "2",
                "--comms", "10", "4", "6", "2", "10",
                "--speeds", "4", "2", "1",
                "--bandwidth", "10",
                "--heuristic", "H1",
                "--period", "6",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sp mono P" in out
        assert "period" in out

    def test_solve_fixed_latency(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--heuristic", "H5",
                "--latency", "10",
            ]
        )
        assert rc == 0
        assert "Sp mono L" in capsys.readouterr().out

    def test_solve_missing_bound_errors(self, capsys):
        rc = main(
            [
                "solve",
                "--works", "5", "3",
                "--comms", "1", "1", "1",
                "--speeds", "4", "2",
                "--heuristic", "H1",
            ]
        )
        assert rc == 2
        assert "needs --period" in capsys.readouterr().err


class TestParallelFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.batch_size is None

    def test_workers_and_batch_size_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "--workers", "4", "--batch-size", "8"]
        )
        assert args.workers == 4
        assert args.batch_size == 8

    def test_failure_command_has_parallel_flags(self):
        args = build_parser().parse_args(["failure", "--workers", "2"])
        assert args.workers == 2

    def test_sweep_output_identical_for_any_worker_count(self, capsys):
        base = [
            "sweep", "--family", "E1", "--stages", "6", "--processors", "5",
            "--instances", "3", "--thresholds", "3", "--seed", "1",
        ]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2", "--batch-size", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out


class TestExperimentCommands:
    def test_sweep_command(self, capsys):
        rc = main(
            [
                "sweep", "--family", "E1", "--stages", "6", "--processors", "5",
                "--instances", "3", "--thresholds", "3", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sp mono P" in out and "E1" in out

    def test_failure_command(self, capsys):
        rc = main(
            [
                "failure", "--family", "E2", "--stages", "5", "8",
                "--processors", "5", "--instances", "3", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "H1" in out and "n=8" in out

    def test_ablation_command(self, capsys):
        rc = main(
            [
                "ablation", "--family", "E1", "--stages", "6", "--processors", "5",
                "--instances", "2", "--study", "selection-rule",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Ablation" in out

    def test_validate_command(self, capsys):
        rc = main(
            [
                "validate", "--family", "E1", "--stages", "5", "--processors", "4",
                "--instances", "2", "--datasets", "20",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rel. error" in out
