"""Tests of the unified solver registry (repro.solvers)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.application import PipelineApplication
from repro.core.exceptions import ConfigurationError
from repro.core.platform import Platform
from repro.exact.homogeneous_dp import homogeneous_min_period
from repro.heuristics import get_heuristic
from repro.solvers import (
    Capability,
    Objective,
    SolveRequest,
    SolveResult,
    SolverFamily,
    as_solver,
    get_solver,
    resolve_solvers,
    solver_names,
    solvers_for_platform,
)


@pytest.fixture
def app() -> PipelineApplication:
    return PipelineApplication(
        works=[5.0, 3.0, 8.0, 2.0], comm_sizes=[10.0, 4.0, 6.0, 2.0, 10.0]
    )


@pytest.fixture
def hetero_platform() -> Platform:
    return Platform.communication_homogeneous([4.0, 2.0, 1.0], bandwidth=10.0)


@pytest.fixture
def hom_platform() -> Platform:
    return Platform.communication_homogeneous([2.0, 2.0, 2.0], bandwidth=10.0)


class TestRegistryContents:
    def test_every_family_is_registered(self):
        names = solver_names()
        # 6 heuristics + 3 homogeneous DPs + 2 bitmask + 2 brute force
        # + 2 one-to-one + replication + heterogeneous links + 3 local search
        assert len(names) == 20
        assert len(solver_names(SolverFamily.HEURISTIC)) == 6
        assert len(solver_names(SolverFamily.EXACT)) == 9
        assert len(solver_names(SolverFamily.EXTENSION)) == 5

    def test_heuristics_keep_table1_order_and_names(self):
        heuristic = resolve_solvers("heuristics")
        assert [s.key for s in heuristic] == ["H1", "H2", "H3", "H4", "H5", "H6"]
        assert heuristic[0].name == "Sp mono P"

    @pytest.mark.parametrize(
        "query,expected",
        [
            ("H1", "Sp mono P"),
            ("sp-mono-p", "Sp mono P"),
            ("DP-P", "hom-dp-period"),
            ("hom_dp_period", "hom-dp-period"),
            ("homogeneous_min_period", "hom-dp-period"),
            ("BITMASK-DP", "bitmask-dp-latency-for-period"),
            ("brute force period", "brute-force-period"),
            ("one_to_one_min_latency", "one-to-one-latency"),
            ("replication", "greedy-replication"),
            ("X1", "Hetero Sp P"),
        ],
    )
    def test_lookup_variants(self, query, expected):
        assert get_solver(query).name == expected

    def test_unknown_name_has_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_solver("hom-dp-perod")
        message = excinfo.value.args[0]
        assert "did you mean" in message
        assert "hom-dp-period" in message

    def test_group_selectors(self):
        assert [s.family for s in resolve_solvers("exact")] == ["exact"] * 9
        assert len(resolve_solvers("all")) == 20
        assert len(resolve_solvers(None)) == 20
        assert [s.key for s in resolve_solvers(["H6", "DP-P"])] == ["H6", "DP-P"]


class TestCapabilities:
    def test_homogeneous_only_filtered_out_on_hetero_platform(
        self, hetero_platform
    ):
        names = {s.name for s in solvers_for_platform(hetero_platform, "exact")}
        assert "hom-dp-period" not in names
        assert "bitmask-dp-latency-for-period" in names

    def test_exact_solvers_for_homogeneous_platform(self, hom_platform):
        exact = solvers_for_platform(
            hom_platform, "all", require={Capability.EXACT}
        )
        assert {s.name for s in exact} >= {
            "hom-dp-period",
            "bitmask-dp-latency-for-period",
            "brute-force-period",
        }

    def test_supports_reports_reason(self, hetero_platform):
        ok, reason = get_solver("hom-dp-period").supports(hetero_platform)
        assert not ok
        assert "identical processor speeds" in reason

    def test_adhoc_wrapper_mirrors_registered_capabilities(self):
        """as_solver(H1 instance) must agree with get_solver('H1').supports."""
        from repro.extensions.heterogeneous_links import HeterogeneousSplittingPeriod

        wrapped = as_solver(get_heuristic("H1"))
        # ad-hoc wrappers are uncacheable, so they cannot carry the frontier
        # capability (frontier curves are cache entries keyed by solver
        # name/version); every platform capability must still mirror
        assert wrapped.capabilities == (
            get_solver("H1").capabilities - {Capability.FRONTIER}
        )
        assert wrapped.frontier_mode is None
        hetero_aware = as_solver(HeterogeneousSplittingPeriod())
        assert Capability.HETEROGENEOUS_LINKS in hetero_aware.capabilities
        assert Capability.COMM_HOMOGENEOUS_ONLY not in hetero_aware.capabilities


class TestSolving:
    def test_heuristic_solver_matches_direct_run(self, app, hetero_platform):
        direct = get_heuristic("H1").run(app, hetero_platform, period_bound=6.0)
        via_registry = get_solver("H1").solve(
            app, hetero_platform, SolveRequest.fixed_period(6.0)
        )
        assert via_registry.period == direct.period
        assert via_registry.latency == direct.latency
        assert via_registry.mapping == direct.mapping
        assert via_registry.n_splits == direct.n_splits
        assert via_registry.history == direct.history
        assert via_registry.solver == "Sp mono P"
        assert via_registry.family == SolverFamily.HEURISTIC
        assert via_registry.wall_time > 0.0

    def test_exact_solver_matches_direct_call(self, app, hom_platform):
        mapping, period = homogeneous_min_period(app, hom_platform)
        result = get_solver("hom-dp-period").run(app, hom_platform)
        assert result.period == period
        assert result.mapping == mapping
        assert result.family == SolverFamily.EXACT
        assert result.feasible

    def test_objective_mismatch_rejected(self, app, hom_platform):
        with pytest.raises(ConfigurationError):
            get_solver("hom-dp-period").solve(
                app, hom_platform, SolveRequest.fixed_period(5.0)
            )

    def test_missing_bound_rejected(self, app, hetero_platform):
        with pytest.raises(ConfigurationError):
            get_solver("H1").run(app, hetero_platform)

    def test_infeasible_reported_through_flag(self, app, hom_platform):
        result = get_solver("hom-dp-latency-for-period").run(
            app, hom_platform, period_bound=1e-9
        )
        assert not result.feasible
        assert result.mapping.n_intervals == 1  # Lemma 1 fallback mapping
        assert "infeasible_reason" in result.details

    def test_replication_carries_replica_groups(self, app, hetero_platform):
        result = get_solver("greedy-replication").run(
            app, hetero_platform, period_bound=2.0
        )
        groups = result.details["replicated_intervals"]
        assert sum(len(g["processors"]) for g in groups) <= 3
        assert result.period <= result.details["base_period"]

    def test_solve_result_point(self, app, hetero_platform):
        result = get_solver("H1").run(app, hetero_platform, period_bound=6.0)
        assert result.point == (result.period, result.latency)


class TestDriverGuards:
    """The experiment drivers reject solvers their protocol can't measure."""

    def test_sweep_rejects_unconstrained_solvers(self):
        from repro.experiments.sweep import run_sweep
        from repro.generators.experiments import experiment_config

        cfg = experiment_config("E1", 5, 4, n_instances=2)
        with pytest.raises(ConfigurationError, match="cannot be swept"):
            run_sweep(cfg, heuristics=["hom-dp-period"], n_thresholds=2, seed=0)

    def test_failure_thresholds_reject_unconstrained_solvers(self):
        from repro.experiments.failure import failure_thresholds
        from repro.generators.experiments import experiment_config

        cfg = experiment_config("E1", 5, 4, n_instances=2)
        with pytest.raises(ConfigurationError, match="bounded-objective"):
            failure_thresholds(cfg, heuristics=["one-to-one-period"], seed=0)

    def test_failure_thresholds_reject_exact_solvers(self):
        """Exact solvers have no best-effort period at an unreachable bound."""
        from repro.experiments.failure import failure_thresholds
        from repro.generators.experiments import experiment_config

        cfg = experiment_config("E1", 5, 4, n_instances=2)
        with pytest.raises(ConfigurationError, match="best-effort"):
            failure_thresholds(
                cfg, heuristics=["bitmask-dp-latency-for-period"], seed=0
            )

    def test_validate_solver_simulates_the_real_exact_mapping(self):
        """Exact fixed-period solvers must not validate the Lemma 1 fallback."""
        from repro.simulation.validate import validate_solver

        app = PipelineApplication(
            works=[5.0, 3.0, 8.0, 2.0], comm_sizes=[10.0, 4.0, 6.0, 2.0, 10.0]
        )
        platform = Platform.communication_homogeneous(
            [2.0, 2.0, 2.0], bandwidth=10.0
        )
        result, report = validate_solver(
            app, platform, "hom-dp-latency-for-period", n_datasets=20
        )
        assert result.feasible
        assert "infeasible_reason" not in result.details
        # at the whole-chain period bound the latency optimum is reachable
        assert report.period_relative_error <= 0.05


class TestRequestValidation:
    def test_bounded_objectives_require_their_bound(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(Objective.MIN_LATENCY_FOR_PERIOD)
        with pytest.raises(ConfigurationError):
            SolveRequest(Objective.MIN_PERIOD_FOR_LATENCY)

    def test_bounds_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SolveRequest.fixed_period(0.0)
        with pytest.raises(ConfigurationError):
            SolveRequest.min_period(latency_bound=-1.0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            SolveRequest("maximise-throughput")

    def test_threshold_property(self):
        assert SolveRequest.fixed_period(4.0).threshold == 4.0
        assert SolveRequest.fixed_latency(9.0).threshold == 9.0
        assert SolveRequest.min_period().threshold is None


class TestPickling:
    def test_registered_solver_pickles_by_name(self):
        solver = get_solver("bitmask-dp-latency-for-period")
        clone = pickle.loads(pickle.dumps(solver))
        assert clone.name == solver.name
        assert clone.family == solver.family

    def test_adhoc_heuristic_solver_pickles_by_value(self, app, hetero_platform):
        wrapped = as_solver(get_heuristic("H4"))
        clone = pickle.loads(pickle.dumps(wrapped))
        a = wrapped.run(app, hetero_platform, period_bound=5.0)
        b = clone.run(app, hetero_platform, period_bound=5.0)
        assert a.period == b.period and a.mapping == b.mapping

    def test_solve_result_pickles(self, app, hetero_platform):
        result = get_solver("H1").run(app, hetero_platform, period_bound=6.0)
        clone = pickle.loads(pickle.dumps(result))
        assert isinstance(clone, SolveResult)
        assert clone == result
