"""Unit tests for the exact bitmask dynamic program."""

from __future__ import annotations

import pytest

from tests.conftest import random_instance
from repro.core.costs import evaluate, optimal_latency
from repro.core.exceptions import InfeasibleError
from repro.core.platform import Platform
from repro.exact.brute_force import brute_force_min_latency, brute_force_min_period
from repro.exact.dp_bitmask import dp_min_latency_for_period, dp_min_period_for_latency


class TestMinLatencyForPeriod:
    def test_matches_brute_force(self, small_app, small_platform):
        _, best = brute_force_min_period(small_app, small_platform)
        for factor in (1.0, 1.2, 1.5, 3.0):
            bound = best.period * factor
            bf_mapping, bf_ev = brute_force_min_latency(
                small_app, small_platform, period_bound=bound
            )
            dp_mapping, dp_latency = dp_min_latency_for_period(
                small_app, small_platform, bound
            )
            assert dp_latency == pytest.approx(bf_ev.latency, rel=1e-9)
            assert evaluate(small_app, small_platform, dp_mapping).period <= bound + 1e-9

    def test_matches_brute_force_on_random_instances(self):
        for seed in range(4):
            app, platform = random_instance(6, 4, seed=seed)
            _, best = brute_force_min_period(app, platform)
            bound = best.period * 1.3
            _, bf_ev = brute_force_min_latency(app, platform, period_bound=bound)
            _, dp_latency = dp_min_latency_for_period(app, platform, bound)
            assert dp_latency == pytest.approx(bf_ev.latency, rel=1e-9)

    def test_infeasible_bound_raises(self, small_app, small_platform):
        with pytest.raises(InfeasibleError):
            dp_min_latency_for_period(small_app, small_platform, 1e-9)

    def test_large_bound_gives_lemma1(self, small_app, small_platform):
        _, latency = dp_min_latency_for_period(small_app, small_platform, 1e9)
        assert latency == pytest.approx(optimal_latency(small_app, small_platform))

    def test_guards(self, small_app):
        too_many = Platform.fully_homogeneous(20)
        with pytest.raises(ValueError):
            dp_min_latency_for_period(small_app, too_many, 10.0)
        hetero = Platform.fully_heterogeneous(
            [1.0, 2.0], [[0.0, 3.0], [3.0, 0.0]]
        )
        # make it genuinely heterogeneous in links
        hetero_links = Platform.fully_heterogeneous(
            [1.0, 2.0, 3.0],
            [[0.0, 3.0, 1.0], [3.0, 0.0, 2.0], [1.0, 2.0, 0.0]],
        )
        with pytest.raises(ValueError):
            dp_min_latency_for_period(small_app, hetero_links, 10.0)
        del hetero


class TestMinPeriodForLatency:
    def test_matches_brute_force(self, small_app, small_platform):
        base = optimal_latency(small_app, small_platform)
        for factor in (1.0, 1.3, 2.0):
            bound = base * factor
            _, bf_ev = brute_force_min_period(
                small_app, small_platform, latency_bound=bound
            )
            dp_mapping, dp_period = dp_min_period_for_latency(
                small_app, small_platform, bound, rel_tol=1e-7
            )
            assert dp_period == pytest.approx(bf_ev.period, rel=1e-4)
            assert evaluate(small_app, small_platform, dp_mapping).latency <= bound + 1e-9

    def test_infeasible_latency_bound(self, small_app, small_platform):
        with pytest.raises(InfeasibleError):
            dp_min_period_for_latency(small_app, small_platform, 0.1)

    def test_monotone_in_bound(self, small_app, small_platform):
        base = optimal_latency(small_app, small_platform)
        _, tight = dp_min_period_for_latency(small_app, small_platform, base)
        _, loose = dp_min_period_for_latency(small_app, small_platform, base * 3)
        assert loose <= tight + 1e-9
