"""Greedy counterexample minimisation: progress, termination, determinism."""

from __future__ import annotations

import numpy as np

from repro.core.application import PipelineApplication
from repro.core.platform import Platform
from repro.scenarios import generate_scenarios
from repro.scenarios.shrink import _size_key, shrink_instance


def _scenario(family: str, seed: int, index: int = 0):
    scenario = generate_scenarios(index + 1, family, seed)[index]
    return scenario.application, scenario.platform


class TestShrink:
    def test_shrinks_to_the_predicate_core(self):
        app, platform = _scenario("heterogeneous-chain", seed=5, index=3)

        def fails(a, p):
            return a.n_stages >= 2 and a.total_work > 1.0

        result = shrink_instance(app, platform, fails)
        assert fails(result.application, result.platform)
        assert result.application.n_stages == 2
        assert result.platform.n_processors == 1
        # every remaining value is as simple as the predicate allows
        assert np.all(result.application.comm_sizes == 0.0)
        assert result.platform.uniform_bandwidth == 1.0
        assert np.all(result.platform.speeds == 1.0)

    def test_result_is_locally_minimal_under_size_key(self):
        app, platform = _scenario("extreme-skew", seed=1, index=2)

        def fails(a, p):
            return a.total_work > 0.0

        result = shrink_instance(app, platform, fails)
        # single stage, unit-ish platform: nothing below it still fails
        assert result.application.n_stages == 1
        assert result.platform.n_processors == 1
        assert _size_key(result.application, result.platform) <= _size_key(
            app, platform
        )

    def test_deterministic(self):
        app, platform = _scenario("bottleneck-link", seed=9, index=1)

        def fails(a, p):
            return a.n_stages >= 2

        first = shrink_instance(app, platform, fails)
        second = shrink_instance(app, platform, fails)
        assert first.application == second.application
        assert first.platform == second.platform
        assert first.n_evaluations == second.n_evaluations

    def test_budget_is_respected(self):
        app, platform = _scenario("large-chain", seed=0, index=0)
        calls = {"n": 0}

        def fails(a, p):
            calls["n"] += 1
            return True

        result = shrink_instance(app, platform, fails, max_evaluations=25)
        assert result.n_evaluations <= 25
        assert calls["n"] <= 25

    def test_non_reproducing_predicate_keeps_instance(self):
        app, platform = _scenario("homogeneous-chain", seed=4, index=0)
        result = shrink_instance(app, platform, lambda a, p: False)
        assert result.application == app
        assert result.platform == platform
        assert result.n_accepted == 0

    def test_predicate_errors_discard_candidates(self):
        app, platform = _scenario("heterogeneous-chain", seed=6, index=0)

        def fragile(a, p):
            if a.n_stages < app.n_stages:
                raise RuntimeError("cannot evaluate the smaller instance")
            return True

        result = shrink_instance(app, platform, fragile)
        # stage drops all error out; the platform still shrinks
        assert result.application.n_stages == app.n_stages

    def test_heterogeneous_platform_collapse(self):
        app, platform = _scenario("heterogeneous-links", seed=2, index=2)

        def fails(a, p):
            return True

        result = shrink_instance(app, platform, fails)
        assert result.platform.n_processors == 1
        assert result.platform.is_communication_homogeneous

    def test_size_key_orders_simplicity(self):
        simple = PipelineApplication([1.0], [0.0, 0.0])
        rich = PipelineApplication([1.5, 2.0], [1.0, 3.5, 2.0])
        unit = Platform([1.0], 1.0)
        big = Platform([3.0, 2.0], 5.0)
        assert _size_key(simple, unit) < _size_key(rich, unit)
        assert _size_key(simple, unit) < _size_key(simple, big)
