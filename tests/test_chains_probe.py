"""Unit tests for the greedy probes of :mod:`repro.chains.probe`."""

from __future__ import annotations

import numpy as np
from repro.chains.probe import (
    ProbeResult,
    prefix_sums,
    probe_heterogeneous,
    probe_homogeneous,
)


class TestPrefixSums:
    def test_values(self):
        assert list(prefix_sums([1, 2, 3])) == [0, 1, 3, 6]

    def test_empty(self):
        assert list(prefix_sums([])) == [0]


class TestHomogeneousProbe:
    def test_feasible_partition(self):
        result = probe_homogeneous([2, 2, 2, 2], 2, 4.0)
        assert result.feasible
        assert result.as_interval_list() == [(0, 1), (2, 3)]
        assert result.intervals_used == 2

    def test_infeasible_when_bottleneck_too_small(self):
        assert not probe_homogeneous([5, 5, 5], 2, 6.0).feasible

    def test_single_element_exceeding_bottleneck(self):
        assert not probe_homogeneous([10, 1], 5, 9.0).feasible

    def test_greedy_uses_fewest_intervals(self):
        result = probe_homogeneous([1, 1, 1, 1], 4, 10.0)
        assert result.feasible
        assert result.intervals_used == 1

    def test_zero_intervals_infeasible(self):
        assert not probe_homogeneous([1], 0, 10.0).feasible

    def test_empty_array_is_feasible(self):
        result = probe_homogeneous([], 3, 1.0)
        assert result.feasible
        assert result.intervals_used == 0

    def test_negative_bottleneck_infeasible(self):
        assert not probe_homogeneous([1], 1, -1.0).feasible

    def test_exact_boundary_value(self):
        # sums exactly equal to the bottleneck are allowed
        assert probe_homogeneous([3, 3, 3], 3, 3.0).feasible

    def test_probe_matches_bruteforce_feasibility(self, rng):
        """The greedy probe decides feasibility exactly (vs exhaustive search)."""
        from itertools import combinations

        for _ in range(30):
            n = int(rng.integers(3, 8))
            p = int(rng.integers(1, 4))
            values = rng.integers(1, 10, size=n).astype(float)
            bottleneck = float(rng.uniform(values.max() * 0.8, values.sum()))

            def exhaustive_feasible() -> bool:
                for m in range(1, p + 1):
                    for cuts in combinations(range(1, n), m - 1):
                        bounds = [0, *cuts, n]
                        sums = [
                            values[bounds[i] : bounds[i + 1]].sum()
                            for i in range(len(bounds) - 1)
                        ]
                        if max(sums) <= bottleneck + 1e-9:
                            return True
                return False

            assert probe_homogeneous(values, p, bottleneck).feasible == exhaustive_feasible()


class TestHeterogeneousProbe:
    def test_fixed_order_feasible(self):
        # speeds 4 then 1 with bottleneck 1: capacities 4 and 1
        result = probe_heterogeneous([2, 2, 1], [4, 1], 1.0)
        assert result.feasible
        assert result.as_interval_list() == [(0, 1), (2, 2)]

    def test_fixed_order_infeasible_other_order(self):
        # slow processor first cannot take the first heavy element
        result = probe_heterogeneous([2, 2, 1], [1, 4], 1.0)
        assert not result.feasible

    def test_processor_skipped_when_too_slow(self):
        # the middle processor cannot even take one element and is skipped
        result = probe_heterogeneous([5, 5], [5, 1, 5], 1.0)
        assert result.feasible
        interval_list = result.as_interval_list()
        assert interval_list == [(0, 0), (1, 1)]

    def test_empty_values_feasible(self):
        assert probe_heterogeneous([], [1, 2], 1.0).feasible

    def test_no_speeds_infeasible(self):
        assert not probe_heterogeneous([1], [], 1.0).feasible

    def test_result_type(self):
        assert isinstance(probe_heterogeneous([1], [2], 1.0), ProbeResult)

    def test_homogeneous_speeds_match_homogeneous_probe(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 12))
            p = int(rng.integers(1, 5))
            values = rng.uniform(0.5, 5.0, size=n)
            bottleneck = float(rng.uniform(0.5, values.sum()))
            hom = probe_homogeneous(values, p, bottleneck)
            het = probe_heterogeneous(values, np.ones(p), bottleneck)
            assert hom.feasible == het.feasible
