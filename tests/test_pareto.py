"""Unit tests for :mod:`repro.core.pareto`."""

from __future__ import annotations

import pytest

from repro.core.pareto import (
    BicriteriaPoint,
    best_by_weighted_sum,
    dominates,
    hypervolume_2d,
    ideal_point,
    nadir_point,
    pareto_front,
    weighted_sum,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 2.0), (2.0, 3.0))
        assert dominates((1.0, 3.0), (2.0, 3.0))
        assert not dominates((2.0, 3.0), (1.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_incomparable_points(self):
        assert not dominates((1.0, 5.0), (2.0, 1.0))
        assert not dominates((2.0, 1.0), (1.0, 5.0))

    def test_point_objects(self):
        a = BicriteriaPoint(1.0, 2.0, label="a")
        b = BicriteriaPoint(3.0, 4.0, label="b")
        assert a.dominates(b)
        assert tuple(a) == (1.0, 2.0)


class TestParetoFront:
    def test_front_of_simple_set(self):
        pts = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 3.0)]
        front = pareto_front(pts)
        assert [(p.period, p.latency) for p in front] == [
            (1.0, 3.0),
            (2.0, 2.0),
            (3.0, 1.0),
        ]

    def test_dominated_points_removed(self):
        pts = [(1.0, 1.0), (2.0, 2.0), (0.5, 3.0)]
        front = pareto_front(pts)
        assert (2.0, 2.0) not in [(p.period, p.latency) for p in front]

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_duplicates_collapse(self):
        front = pareto_front([(1.0, 1.0), (1.0, 1.0)])
        assert len(front) == 1

    def test_front_is_mutually_non_dominated(self, rng):
        pts = [(float(x), float(y)) for x, y in rng.uniform(0, 10, size=(100, 2))]
        front = pareto_front(pts)
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not a.dominates(b)

    def test_every_point_dominated_or_on_front(self, rng):
        pts = [(float(x), float(y)) for x, y in rng.uniform(0, 10, size=(60, 2))]
        front = pareto_front(pts)
        front_tuples = {(p.period, p.latency) for p in front}
        for pt in pts:
            on_front = pt in front_tuples
            dominated = any(dominates(f, pt) for f in front)
            duplicated = any(
                f.period <= pt[0] + 1e-12 and f.latency <= pt[1] + 1e-12 for f in front
            )
            assert on_front or dominated or duplicated


class TestIndicators:
    def test_ideal_and_nadir(self):
        pts = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)]
        assert ideal_point(pts) == (1.0, 1.0)
        assert nadir_point(pts) == (3.0, 3.0)

    def test_ideal_empty_raises(self):
        with pytest.raises(ValueError):
            ideal_point([])
        with pytest.raises(ValueError):
            nadir_point([])

    def test_hypervolume_simple(self):
        # single point (1, 1) with reference (3, 3): dominated area is 2 x 2
        assert hypervolume_2d([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_hypervolume_two_points(self):
        pts = [(1.0, 2.0), (2.0, 1.0)]
        # area = (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3
        assert hypervolume_2d(pts, (3.0, 3.0)) == pytest.approx(3.0)

    def test_hypervolume_ignores_points_beyond_reference(self):
        assert hypervolume_2d([(5.0, 5.0)], (3.0, 3.0)) == 0.0

    def test_hypervolume_monotone_in_points(self, rng):
        pts = [(float(x), float(y)) for x, y in rng.uniform(0, 5, size=(20, 2))]
        hv_all = hypervolume_2d(pts, (6.0, 6.0))
        hv_half = hypervolume_2d(pts[:10], (6.0, 6.0))
        assert hv_all >= hv_half - 1e-12


class TestScalarisation:
    def test_weighted_sum(self):
        assert weighted_sum((2.0, 4.0)) == pytest.approx(3.0)
        assert weighted_sum((2.0, 4.0), 1.0, 0.0) == pytest.approx(2.0)

    def test_best_by_weighted_sum(self):
        pts = [(1.0, 10.0), (5.0, 5.0), (10.0, 1.0)]
        best_period = best_by_weighted_sum(pts, period_weight=1.0, latency_weight=0.0)
        assert best_period.period == 1.0
        best_latency = best_by_weighted_sum(pts, period_weight=0.0, latency_weight=1.0)
        assert best_latency.latency == 1.0

    def test_best_by_weighted_sum_empty(self):
        with pytest.raises(ValueError):
            best_by_weighted_sum([])
