"""The solve cache: keys, LRU semantics, disk store, invalidation, stats.

The cache's contract is behavioural transparency: a result served from the
cache must have the same :meth:`~repro.solvers.base.SolveResult.identity`
as the solver run it memoised (``cache_hit`` / ``wall_time`` aside), keys
must separate every component that can change a result (instance, solver
name, solver *version*, request), and a damaged or foreign store must read
as cold, never as wrong.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.cache import (
    CacheKey,
    DiskCacheStore,
    InMemoryLRUCache,
    SolveCache,
    frontier_key,
    prune_cache_dir,
    solve_key,
)
from repro.generators.experiments import experiment_config, generate_instances
from repro.heuristics import get_heuristic
from repro.solvers.base import SolveRequest
from repro.solvers.registry import get_solver
from repro.solvers.service import solve_with_cache


@pytest.fixture(scope="module")
def instance():
    config = experiment_config("E2", 6, 5, n_instances=1)
    return generate_instances(config, seed=7)[0]


@pytest.fixture(scope="module")
def solved(instance):
    solver = get_solver("H1")
    request = SolveRequest.fixed_period(9.0)
    key = solve_key(instance.application, instance.platform, solver, request)
    result = solver.solve(instance.application, instance.platform, request)
    return key, result


class TestCacheKey:
    def test_every_component_reaches_the_digest(self, instance, solved):
        key, _ = solved
        assert key.solver_version == "1"
        for field, other in (
            ("instance_hash", "0" * 64),
            ("solver_name", "someone-else"),
            ("solver_version", "2"),
            ("request_digest", "f" * 64),
        ):
            changed = dataclasses.replace(key, **{field: other})
            assert changed.digest != key.digest

    def test_key_is_reproducible(self, instance, solved):
        key, _ = solved
        again = solve_key(
            instance.application,
            instance.platform,
            get_solver("H1"),
            SolveRequest.fixed_period(9.0),
        )
        assert again == key and again.digest == key.digest


class TestInMemoryLRU:
    def test_eviction_is_least_recently_used(self, solved):
        _, result = solved
        lru = InMemoryLRUCache(maxsize=2)
        assert lru.put("a", result) == 0
        assert lru.put("b", result) == 0
        assert lru.get("a") is result  # refresh "a": "b" is now oldest
        assert lru.put("c", result) == 1
        assert "b" not in lru and "a" in lru and "c" in lru
        assert lru.get("b") is None

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            InMemoryLRUCache(maxsize=0)


class TestSolveCacheMemory:
    def test_miss_then_hit_with_cache_hit_stamp(self, solved):
        key, result = solved
        cache = SolveCache()
        assert cache.get(key) is None
        cache.put(key, result)
        hit = cache.get(key)
        assert hit.cache_hit is True
        assert hit.identity() == result.identity()
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.memory_hits == 1 and stats.disk_hits == 0
        assert 0.0 < stats.hit_rate < 1.0

    def test_eviction_counted(self, solved):
        key, result = solved
        cache = SolveCache(maxsize=1)
        cache.put(key, result)
        cache.put(dataclasses.replace(key, solver_name="other"), result)
        assert cache.stats.evictions == 1
        assert len(cache) == 1

    def test_memory_only_cache_pickles_to_a_fresh_cache(self, solved):
        key, result = solved
        cache = SolveCache(maxsize=17)
        cache.put(key, result)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.maxsize == 17 and clone.directory is None
        assert clone.get(key) is None  # per-process layer starts cold


class TestSolveCacheDisk:
    def test_round_trip_and_promotion(self, tmp_path, solved):
        key, result = solved
        first = SolveCache(directory=tmp_path / "store")
        first.put(key, result)
        # a different process/session: fresh memory, same directory
        second = SolveCache(directory=tmp_path / "store")
        hit = second.get(key)
        assert hit is not None and hit.cache_hit is True
        assert hit.identity() == result.identity()
        assert second.stats.disk_hits == 1
        second.get(key)
        assert second.stats.memory_hits == 1  # promoted after the disk hit

    def test_version_bump_invalidates(self, tmp_path, solved):
        key, result = solved
        cache = SolveCache(directory=tmp_path / "store")
        cache.put(key, result)
        bumped = dataclasses.replace(key, solver_version="2")
        assert SolveCache(directory=tmp_path / "store").get(bumped) is None

    def test_corrupt_or_foreign_blobs_read_as_misses(self, tmp_path, solved):
        key, result = solved
        store = DiskCacheStore(tmp_path / "store")
        path = store.put(key, result)
        blob = json.loads(path.read_text())

        path.write_text("{ not json")
        assert store.get(key) is None

        blob["instance_hash"] = "0" * 64  # key mismatch (hand-moved blob)
        path.write_text(json.dumps(blob))
        assert store.get(key) is None

        blob["instance_hash"] = key.instance_hash
        blob["schema"] = 999  # unknown format version
        path.write_text(json.dumps(blob))
        assert store.get(key) is None

        path.write_text("[1, 2, 3]")  # valid JSON, but not an object
        assert store.get(key) is None

        blob["schema"] = 1
        blob["result"]["mapping"] = 5  # wrong-typed result field
        path.write_text(json.dumps(blob))
        assert store.get(key) is None

    def test_unwritable_store_degrades_to_not_stored(self, tmp_path, solved):
        """A broken shared --cache-dir must never crash a run.

        Simulated with a plain file squatting on the shard directory the
        blob needs (mkdir then raises, for root and mortals alike).
        """
        key, result = solved
        target = tmp_path / "store"
        target.mkdir()
        (target / key.digest[:2]).write_text("not a directory")
        store = DiskCacheStore(target)
        assert store.put(key, result) is None
        assert store.get(key) is None
        cache = SolveCache(directory=target)
        cache.put(key, result)  # must not raise
        assert cache.get(key) is not None  # still served from memory

    def test_disk_cache_pickles_by_directory(self, tmp_path, solved):
        key, result = solved
        cache = SolveCache(directory=tmp_path / "store")
        cache.put(key, result)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get(key).identity() == result.identity()


class TestFrontierDocumentCache:
    def test_round_trip_and_isolation(self, instance, solved):
        _, result = solved
        key = frontier_key(
            instance.application,
            instance.platform,
            get_solver("H1"),
            "min-latency-fixed-period",
        )
        doc = {"schema": 1, "iterates": [{"period": 9.0, "latency": 20.0}]}
        cache = SolveCache()
        assert cache.get_frontier(key) is None
        cache.put_frontier(key, doc)
        doc["iterates"].append({"period": 1.0})  # caller mutation after put
        got = cache.get_frontier(key)
        assert got == {"schema": 1, "iterates": [{"period": 9.0, "latency": 20.0}]}
        got["iterates"].clear()  # caller mutation after get
        assert cache.get_frontier(key)["iterates"]

    def test_frontier_documents_persist_on_disk(self, tmp_path, instance):
        key = frontier_key(
            instance.application,
            instance.platform,
            get_solver("H1"),
            "min-latency-fixed-period",
        )
        doc = {"schema": 1, "iterates": []}
        SolveCache(directory=tmp_path / "store").put_frontier(key, doc)
        # a different process/session: fresh memory, same directory
        assert SolveCache(directory=tmp_path / "store").get_frontier(key) == doc

    def test_frontier_and_result_blobs_share_a_store_safely(
        self, tmp_path, instance, solved
    ):
        result_key, result = solved
        fkey = frontier_key(
            instance.application,
            instance.platform,
            get_solver("H1"),
            "min-latency-fixed-period",
        )
        cache = SolveCache(directory=tmp_path / "store")
        cache.put(result_key, result)
        cache.put_frontier(fkey, {"schema": 1})
        fresh = SolveCache(directory=tmp_path / "store")
        assert fresh.get_frontier(result_key) is None  # wrong kind: a miss
        assert fresh.get_frontier(fkey) == {"schema": 1}
        assert fresh.get(result_key).identity() == result.identity()


class TestPruneCacheDir:
    def _fill(self, tmp_path, solved, n: int = 4):
        """``n`` blobs with strictly increasing mtimes; returns their keys."""
        import os

        key, result = solved
        store = DiskCacheStore(tmp_path / "store")
        keys = [
            dataclasses.replace(key, instance_hash=f"{i:02x}" * 32)
            for i in range(n)
        ]
        for i, k in enumerate(keys):
            path = store.put(k, result)
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        return store, keys

    def test_oldest_blobs_are_evicted_first(self, tmp_path, solved):
        store, keys = self._fill(tmp_path, solved)
        sizes = [store.path_for(k).stat().st_size for k in keys]
        budget = sizes[-2] + sizes[-1]  # room for exactly the two newest
        n_kept, n_removed, bytes_kept = prune_cache_dir(
            tmp_path / "store", budget
        )
        assert (n_kept, n_removed) == (2, 2)
        assert bytes_kept == budget
        assert store.get(keys[0]) is None and store.get(keys[1]) is None
        assert store.get(keys[2]) is not None and store.get(keys[3]) is not None

    def test_under_budget_removes_nothing(self, tmp_path, solved):
        store, keys = self._fill(tmp_path, solved)
        n_kept, n_removed, _ = prune_cache_dir(tmp_path / "store", 10**9)
        assert (n_kept, n_removed) == (len(keys), 0)
        assert all(store.get(k) is not None for k in keys)

    def test_zero_budget_removes_everything(self, tmp_path, solved):
        store, keys = self._fill(tmp_path, solved)
        n_kept, n_removed, bytes_kept = prune_cache_dir(tmp_path / "store", 0)
        assert (n_kept, n_removed, bytes_kept) == (0, len(keys), 0)
        assert all(store.get(k) is None for k in keys)

    def test_negative_budget_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            prune_cache_dir(tmp_path / "store", -1)

    def test_missing_directory_is_empty(self, tmp_path):
        assert prune_cache_dir(tmp_path / "nowhere", 100) == (0, 0, 0)

    def test_corrupt_blobs_are_counted_and_evictable(self, tmp_path, solved):
        """Pruning never parses blobs: garbage is just bytes to reclaim."""
        import os

        store, keys = self._fill(tmp_path, solved, n=2)
        junk = tmp_path / "store" / "zz" / "junk.json"
        junk.parent.mkdir()
        junk.write_text("{ not json at all")
        os.utime(junk, (999_999, 999_999))  # older than every real blob
        sizes = [store.path_for(k).stat().st_size for k in keys]
        n_kept, n_removed, bytes_kept = prune_cache_dir(
            tmp_path / "store", sum(sizes)
        )
        # the corrupt (and oldest) blob went first; the real ones survive
        assert (n_kept, n_removed) == (2, 1)
        assert not junk.exists()
        assert all(store.get(k) is not None for k in keys)
        # ... and a corrupt survivor still reads as a miss, never as wrong
        store.path_for(keys[0]).write_text("{ not json")
        assert store.get(keys[0]) is None


class TestSolveWithCache:
    def test_second_call_is_served_from_the_cache(self, instance):
        cache = SolveCache()
        request = SolveRequest.fixed_period(9.0)
        app, platform = instance.application, instance.platform
        cold = solve_with_cache("H1", app, platform, request, cache)
        warm = solve_with_cache("H1", app, platform, request, cache)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.identity() == warm.identity()
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_adhoc_heuristics_are_never_cached(self, instance):
        cache = SolveCache()
        request = SolveRequest.fixed_period(9.0)
        heuristic = get_heuristic("H1")  # ad-hoc wrap: one name, any config
        first = solve_with_cache(
            heuristic, instance.application, instance.platform, request, cache
        )
        second = solve_with_cache(
            heuristic, instance.application, instance.platform, request, cache
        )
        assert not first.cache_hit and not second.cache_hit
        assert cache.stats.lookups == 0 and len(cache) == 0

    def test_no_cache_means_plain_solve(self, instance):
        request = SolveRequest.fixed_period(9.0)
        result = solve_with_cache(
            "H1", instance.application, instance.platform, request, None
        )
        assert not result.cache_hit and result.solver == "Sp mono P"


class TestThreadSafety:
    """The cache is shared between the daemon's event loop and its solver
    threads; unguarded ``stats.x += 1`` read-modify-writes (and concurrent
    LRU reordering) used to drop increments under that interleaving.  The
    accounting must be *exact*, not approximately right."""

    def _hammer(self, work, n_threads: int = 8):
        import sys
        import threading

        # preempt as aggressively as the interpreter allows: the drift bug
        # is a lost-update race, so shrink the race window's grain
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            barrier = threading.Barrier(n_threads)

            def runner(tid: int) -> None:
                barrier.wait()
                work(tid)

            threads = [
                threading.Thread(target=runner, args=(tid,))
                for tid in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(interval)

    def test_lookup_counters_are_exact_under_concurrency(self, solved):
        import random

        key, result = solved
        cache = SolveCache(maxsize=8)
        keys = [
            dataclasses.replace(key, instance_hash=f"{i:02x}" * 32)
            for i in range(16)
        ]
        for k in keys:
            cache.put(k, result)
        n_threads, n_rounds = 8, 400

        def work(tid: int) -> None:
            rng = random.Random(tid)
            for _ in range(n_rounds):
                cache.get(rng.choice(keys))

        self._hammer(work, n_threads)
        snap = cache.stats_snapshot()
        assert snap["hits"] + snap["misses"] == n_threads * n_rounds
        assert snap["memory_hits"] == snap["hits"]
        assert snap["hit_rate"] == snap["hits"] / (n_threads * n_rounds)

    def test_store_counters_are_exact_under_concurrency(self, solved):
        key, result = solved
        cache = SolveCache(maxsize=4)
        n_threads, n_rounds = 8, 200

        def work(tid: int) -> None:
            for i in range(n_rounds):
                mine = dataclasses.replace(
                    key, instance_hash=f"{tid:02x}{i:06x}" * 8
                )
                cache.put(mine, result)
                cache.get(mine)

        self._hammer(work, n_threads)
        snap = cache.stats_snapshot()
        assert snap["stores"] == n_threads * n_rounds
        assert snap["hits"] + snap["misses"] == n_threads * n_rounds
        # LRU bound holds despite concurrent reordering
        assert len(cache) <= 4
        assert snap["evictions"] == snap["stores"] - len(cache)

    def test_snapshot_is_a_consistent_copy(self, solved):
        key, result = solved
        cache = SolveCache()
        cache.put(key, result)
        snap = cache.stats_snapshot()
        cache.get(key)
        assert snap["hits"] == 0  # a copy, not a live view
        assert cache.stats_snapshot()["hits"] == 1
