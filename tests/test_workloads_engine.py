"""Tests of the workload engine: journal resume, sinks, determinism."""

from __future__ import annotations

import json

import pytest

from repro.cache import SolveCache
from repro.core.exceptions import ConfigurationError
from repro.generators.experiments import experiment_config, generate_instances
from repro.scenarios.families import generate_scenarios
from repro.workloads import (
    CsvSink,
    JournalError,
    JsonlSink,
    differential_plan,
    execute_plan,
    expand_spec,
    load_journal,
    render_workload_report,
    solve_plan,
    spec_from_document,
    write_sinks,
)
from repro.workloads.sinks import CSV_COLUMNS


@pytest.fixture(scope="module")
def instances():
    config = experiment_config("E1", 6, 5, n_instances=5)
    return generate_instances(config, seed=7)


@pytest.fixture(scope="module")
def plan(instances):
    built, _ = solve_plan(instances, [("H1", 4.0), ("H4", 20.0)])
    return built


class TestExecution:
    def test_complete_run_covers_every_task(self, plan):
        run = execute_plan(plan)
        assert run.complete
        assert len(run.results) == len(plan.tasks)
        assert run.stats.n_executed == len(plan.tasks)

    def test_workers_byte_identical(self, plan):
        serial = execute_plan(plan)
        pooled = execute_plan(plan, workers=3, batch_size=2)
        for task in plan.tasks:
            assert (
                serial.result_for(task).identity()
                == pooled.result_for(task).identity()
            )
        assert render_workload_report(serial) == render_workload_report(pooled)

    def test_cache_makes_second_run_free(self, plan):
        cache = SolveCache()
        cold = execute_plan(plan, cache=cache)
        warm = execute_plan(plan, cache=cache)
        assert warm.stats.n_solved == 0
        assert warm.stats.n_cache_hits == len(plan.tasks)
        assert cache.hit_rate > 0.0
        assert render_workload_report(cold) == render_workload_report(warm)

    def test_max_tasks_defers_the_rest(self, plan):
        run = execute_plan(plan, max_tasks=3)
        assert not run.complete
        assert run.stats.n_executed == 3
        assert run.stats.n_deferred == len(plan.tasks) - 3
        assert "INCOMPLETE" in render_workload_report(run)


class TestJournalResume:
    def test_interrupted_then_resumed_is_byte_identical(self, plan, tmp_path):
        journal = tmp_path / "journal.jsonl"
        capped = execute_plan(plan, journal=journal, max_tasks=4)
        assert not capped.complete
        resumed = execute_plan(plan, journal=journal, resume=True)
        fresh = execute_plan(plan)
        assert resumed.complete
        assert resumed.stats.n_from_journal == 4
        assert resumed.stats.n_executed == len(plan.tasks) - 4
        assert render_workload_report(resumed) == render_workload_report(fresh)
        for task in plan.tasks:
            assert (
                resumed.result_for(task).identity()
                == fresh.result_for(task).identity()
            )

    def test_resumed_complete_run_executes_nothing(self, plan, tmp_path):
        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal)
        replay = execute_plan(plan, journal=journal, resume=True)
        assert replay.complete
        assert replay.stats.n_executed == 0
        assert replay.stats.n_from_journal == len(plan.tasks)

    def test_journal_of_a_different_plan_is_rejected(
        self, plan, instances, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal)
        other, _ = solve_plan(instances, [("H1", 9.0)])
        with pytest.raises(JournalError, match="different plans"):
            execute_plan(other, journal=journal, resume=True)

    def test_truncated_trailing_line_is_tolerated(self, plan, tmp_path):
        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal)
        text = journal.read_text(encoding="utf-8")
        journal.write_text(text[:-40], encoding="utf-8")  # kill mid-line
        completed = load_journal(journal, plan)
        assert 0 < len(completed) < len(plan.tasks)
        resumed = execute_plan(plan, journal=journal, resume=True)
        assert resumed.complete
        assert render_workload_report(resumed) == render_workload_report(
            execute_plan(plan)
        )

    def test_resume_after_mid_line_crash_converges(self, plan, tmp_path):
        """The partial tail must be cut before appending: the first resume
        re-executes the lost task and later resumes replay everything —
        the journal never accretes merged/unparseable lines."""
        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal)
        data = journal.read_bytes()
        journal.write_bytes(data[:-40])  # no trailing newline
        first = execute_plan(plan, journal=journal, resume=True)
        assert first.complete and first.stats.n_executed == 1
        second = execute_plan(plan, journal=journal, resume=True)
        assert second.stats.n_executed == 0
        assert second.stats.n_from_journal == len(plan.tasks)
        assert len(load_journal(journal, plan)) == len(plan.tasks)

    def test_crash_inside_header_line_restarts_cleanly(self, plan, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text('{"schema":1,"kind":"workload-jo', encoding="utf-8")
        run = execute_plan(plan, journal=journal, resume=True)
        assert run.complete and run.stats.n_from_journal == 0
        replay = execute_plan(plan, journal=journal, resume=True)
        assert replay.stats.n_executed == 0

    def test_checkpoint_slicing_matches_unsliced_results(
        self, plan, tmp_path, monkeypatch
    ):
        """A tiny checkpoint interval (many slices per group) must not
        change any result or the journal's completeness."""
        from repro.workloads import engine as engine_module

        monkeypatch.setattr(engine_module, "_CHECKPOINT_INTERVAL", 2)
        journal = tmp_path / "journal.jsonl"
        sliced = execute_plan(plan, journal=journal)
        assert len(load_journal(journal, plan)) == len(plan.tasks)
        unsliced = execute_plan(plan)
        for task in plan.tasks:
            assert (
                sliced.result_for(task).identity()
                == unsliced.result_for(task).identity()
            )

    def test_without_resume_an_existing_journal_is_overwritten(
        self, plan, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal, max_tasks=2)
        execute_plan(plan, journal=journal)  # fresh run: truncates
        lines = journal.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1 + len(plan.tasks)

    def test_corrupt_middle_line_is_an_error(self, plan, tmp_path):
        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal)
        lines = journal.read_text(encoding="utf-8").splitlines()
        lines[2] = "{corrupt"
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="corrupt"):
            load_journal(journal, plan)


class TestTruncatedTailRepair:
    """``_repair_truncated_tail`` edge cases around the header line.

    A journal holding exactly one complete header and nothing else — the
    writer died right after the header's newline was lost, or never got to
    checkpoint a record — must keep its header: cutting it would silently
    restart the run on the next resume.
    """

    def test_empty_file_is_left_alone(self, tmp_path):
        from repro.workloads.engine import _repair_truncated_tail

        journal = tmp_path / "journal.jsonl"
        journal.write_bytes(b"")
        _repair_truncated_tail(journal)
        assert journal.read_bytes() == b""

    def test_complete_header_without_newline_is_preserved(self, plan, tmp_path):
        from repro.workloads.engine import _repair_truncated_tail

        journal = tmp_path / "journal.jsonl"
        header = json.dumps(
            {
                "schema": 1,
                "kind": "workload-journal",
                "plan": plan.digest,
                "spec": None,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        journal.write_text(header, encoding="utf-8")  # EOF, no newline
        _repair_truncated_tail(journal)
        assert journal.read_text(encoding="utf-8") == header + "\n"
        # end to end: the resumed run appends to the same journal instead of
        # restarting it, and a second resume replays everything
        execute_plan(plan, journal=journal, resume=True)
        replay = execute_plan(plan, journal=journal, resume=True)
        assert replay.stats.n_executed == 0
        assert replay.stats.n_from_journal == len(plan.tasks)

    def test_header_plus_partial_record_keeps_the_header(self, plan, tmp_path):
        from repro.workloads.engine import _repair_truncated_tail

        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal, max_tasks=1)
        lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
        journal.write_text(lines[0] + lines[1][:-25], encoding="utf-8")
        _repair_truncated_tail(journal)
        assert journal.read_text(encoding="utf-8") == lines[0]
        resumed = execute_plan(plan, journal=journal, resume=True)
        assert resumed.complete and resumed.stats.n_from_journal == 0

    def test_complete_record_without_newline_is_kept(self, plan, tmp_path):
        from repro.workloads.engine import _repair_truncated_tail

        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal, max_tasks=2)
        data = journal.read_bytes()
        journal.write_bytes(data[:-1])  # only the final newline was lost
        _repair_truncated_tail(journal)
        assert journal.read_bytes() == data
        resumed = execute_plan(plan, journal=journal, resume=True)
        assert resumed.stats.n_from_journal == 2


class TestTimeBudgetResume:
    """Wall-clock-budgeted tasks are non-replayable by construction."""

    CELLS = [("H1", 6.0), ("local-search-h1", 6.0, None, 0.02)]

    def test_budget_tasks_never_enter_the_journal(self, instances, tmp_path):
        built, _ = solve_plan(instances, self.CELLS)
        budget_tasks = [t for t in built.tasks if t.time_budget is not None]
        assert len(budget_tasks) == len(instances)
        journal = tmp_path / "journal.jsonl"
        first = execute_plan(built, journal=journal)
        assert first.complete
        text = journal.read_text(encoding="utf-8")
        for task in budget_tasks:
            assert task.digest not in text

    def test_resume_reexecutes_exactly_the_budget_tasks(
        self, instances, tmp_path
    ):
        built, _ = solve_plan(instances, self.CELLS)
        n_budget = sum(1 for t in built.tasks if t.time_budget is not None)
        journal = tmp_path / "journal.jsonl"
        execute_plan(built, journal=journal)
        resumed = execute_plan(built, journal=journal, resume=True)
        assert resumed.complete
        assert resumed.stats.n_from_journal == len(built.tasks) - n_budget
        assert resumed.stats.n_executed == n_budget

    def test_stale_budget_records_from_older_builds_are_skipped(
        self, instances, tmp_path
    ):
        """Defence in depth: a journal written by a build that *did*
        checkpoint budget-bearing results must not replay them."""
        from repro.workloads.engine import _journal_line

        built, _ = solve_plan(instances, self.CELLS)
        journal = tmp_path / "journal.jsonl"
        run = execute_plan(built, journal=journal)
        budget_task = next(t for t in built.tasks if t.time_budget is not None)
        with journal.open("a", encoding="utf-8") as handle:
            handle.write(_journal_line(budget_task, run.result_for(budget_task)))
        completed = load_journal(journal, built)
        assert budget_task.digest not in completed

    def test_cells_differing_only_in_budget_rejected(self, instances):
        """time_budget is outside the task digest, so two such cells would
        collide on one journal key while behaving differently."""
        with pytest.raises(ConfigurationError, match="time_budget"):
            solve_plan(
                instances,
                [
                    ("local-search-h1", 6.0, None, 0.02),
                    ("local-search-h1", 6.0, None, 0.05),
                ],
            )


class TestSinks:
    def test_jsonl_and_csv_rows(self, plan, tmp_path):
        run = execute_plan(plan)
        jsonl_path = tmp_path / "rows.jsonl"
        csv_path = tmp_path / "rows.csv"
        with JsonlSink(jsonl_path) as jsonl, CsvSink(csv_path) as csv_sink:
            write_sinks(run, [jsonl, csv_sink])
        rows = [
            json.loads(line)
            for line in jsonl_path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(rows) == len(plan.tasks)
        assert all("wall_time" not in row and "cache_hit" not in row for row in rows)
        header, *data = csv_path.read_text(encoding="utf-8").splitlines()
        assert header == ",".join(CSV_COLUMNS)
        assert len(data) == len(plan.tasks)

    def test_sink_bytes_identical_after_resume(self, plan, tmp_path):
        journal = tmp_path / "journal.jsonl"
        execute_plan(plan, journal=journal, max_tasks=5)
        resumed = execute_plan(plan, journal=journal, resume=True)
        fresh = execute_plan(plan)
        resumed_path = tmp_path / "resumed.jsonl"
        fresh_path = tmp_path / "fresh.jsonl"
        with JsonlSink(resumed_path) as sink:
            write_sinks(resumed, [sink])
        with JsonlSink(fresh_path) as sink:
            write_sinks(fresh, [sink])
        assert resumed_path.read_bytes() == fresh_path.read_bytes()

    def test_csv_sink_rejects_differential_rows(self, tmp_path):
        scenarios = generate_scenarios(3, seed=0)
        plan = differential_plan(
            [(s.application, s.platform) for s in scenarios], n_datasets=4
        )
        run = execute_plan(plan)
        with pytest.raises(ConfigurationError, match="solve rows only"):
            with CsvSink(tmp_path / "rows.csv") as sink:
                write_sinks(run, [sink])


class TestDifferentialWorkloads:
    def test_fuzz_style_plan_resumes_byte_identically(self, tmp_path):
        scenarios = generate_scenarios(8, seed=1)
        pairs = [(s.application, s.platform) for s in scenarios]
        plan = differential_plan(pairs, n_datasets=4)
        journal = tmp_path / "journal.jsonl"
        capped = execute_plan(plan, journal=journal, max_tasks=3)
        assert not capped.complete
        resumed = execute_plan(plan, journal=journal, resume=True)
        fresh = execute_plan(plan)
        assert resumed.complete
        for task in plan.tasks:
            assert resumed.result_for(task) == fresh.result_for(task)
        assert render_workload_report(resumed) == render_workload_report(fresh)

    def test_differential_spec_expands_and_runs(self):
        spec = spec_from_document(
            {
                "kind": "differential",
                "source": {
                    "kind": "scenarios",
                    "count": 4,
                    "families": ["homogeneous-chain"],
                },
                "n_datasets": 4,
                "seed": 2,
            }
        )
        plan = expand_spec(spec)
        assert plan.kind == "differential"
        run = execute_plan(plan)
        assert run.complete
        assert "comparisons" in render_workload_report(run)


class TestCorpusSource:
    def test_corpus_spec_expands_and_runs_the_oracle(self):
        """Corpus fixtures include heterogeneous platforms, so the corpus
        source pairs naturally with the differential workload kind (the
        oracle gates solvers by platform class itself)."""
        spec = spec_from_document(
            {
                "kind": "differential",
                "source": {"kind": "corpus", "directory": "tests/corpus"},
                "n_datasets": 4,
            }
        )
        plan = expand_spec(spec)
        assert plan.n_instances >= 1
        assert execute_plan(plan).complete

    def test_missing_corpus_directory_is_an_error(self):
        spec = spec_from_document(
            {
                "source": {"kind": "corpus", "directory": "tests/no-such-corpus"},
                "solvers": ["H1"],
                "thresholds": [5.0],
            }
        )
        with pytest.raises(ConfigurationError, match="no instances"):
            expand_spec(spec)
