"""Wire format of the solver daemon: framing, task specs, validation."""

from __future__ import annotations

import json

import pytest

from repro.core.serialization import instance_from_dict
from repro.server.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    SolveTaskSpec,
    decode_line,
    encode_line,
)
from tests.conftest import random_instance


@pytest.fixture(scope="module")
def pair():
    return random_instance(6, 4, seed=11, family="E1")


class TestFraming:
    def test_encode_is_one_newline_terminated_line(self):
        line = encode_line({"op": "ping", "id": 7})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_encoding_is_byte_stable(self):
        # same document, different insertion order -> same bytes (the smoke
        # tests cmp stdout produced from these lines)
        a = encode_line({"op": "solve", "id": 1, "task": {"x": 1, "y": 2}})
        b = encode_line({"task": {"y": 2, "x": 1}, "id": 1, "op": "solve"})
        assert a == b

    def test_round_trip(self):
        doc = {"op": "batch", "id": 3, "tasks": [{"solver": "H1"}]}
        assert decode_line(encode_line(doc)) == doc

    def test_undecodable_line_raises(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json\n")

    def test_non_object_line_raises(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")

    def test_protocol_constants_sane(self):
        assert PROTOCOL_VERSION == 1
        assert MAX_LINE_BYTES >= 1024 * 1024


class TestSolveTaskSpec:
    def test_round_trip_preserves_instance_and_bounds(self, pair):
        app, platform = pair
        spec = SolveTaskSpec(
            application=app,
            platform=platform,
            solver="H1",
            period_bound=12.0,
            latency_bound=60.0,
            max_steps=100,
        )
        again = SolveTaskSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again.solver == "H1"
        assert again.period_bound == 12.0
        assert again.latency_bound == 60.0
        assert again.max_steps == 100
        assert again.time_budget is None
        # the embedded instance survives the round trip exactly
        a0, p0, _ = instance_from_dict(spec.to_dict()["instance"])
        a1, p1, _ = instance_from_dict(again.to_dict()["instance"])
        assert (a0.works == a1.works).all() and (p0.speeds == p1.speeds).all()

    def test_missing_instance_rejected(self):
        with pytest.raises(ProtocolError, match="instance"):
            SolveTaskSpec.from_dict({"solver": "H1"})

    def test_missing_solver_rejected(self, pair):
        app, platform = pair
        document = SolveTaskSpec(app, platform, "H1").to_dict()
        document["solver"] = "  "
        with pytest.raises(ProtocolError, match="solver"):
            SolveTaskSpec.from_dict(document)

    def test_non_numeric_bound_rejected(self, pair):
        app, platform = pair
        document = SolveTaskSpec(app, platform, "H1").to_dict()
        document["period_bound"] = "twelve"
        with pytest.raises(ProtocolError, match="period_bound"):
            SolveTaskSpec.from_dict(document)

    def test_fractional_max_steps_rejected(self, pair):
        app, platform = pair
        document = SolveTaskSpec(app, platform, "H1").to_dict()
        document["max_steps"] = 1.5
        with pytest.raises(ProtocolError, match="max_steps"):
            SolveTaskSpec.from_dict(document)

    def test_corrupt_instance_rejected(self, pair):
        app, platform = pair
        document = SolveTaskSpec(app, platform, "H1").to_dict()
        document["instance"] = {"application": {"bogus": True}}
        with pytest.raises(ProtocolError, match="deserialise"):
            SolveTaskSpec.from_dict(document)
