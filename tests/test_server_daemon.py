"""The solver daemon end to end: correctness, coalescing, batching, drain.

Everything runs against a real daemon — sockets, event loop, executor,
worker pool — hosted either in-process (:class:`DaemonThread`) or, for the
signal test, as a forked ``repro serve`` process that receives an actual
SIGTERM mid-batch.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.generators.experiments import experiment_config, generate_instances
from repro.server import (
    DaemonConfig,
    DaemonThread,
    ServiceClient,
    ServiceError,
    SolveTaskSpec,
    wait_for_server,
)
from repro.server.client import wait_for_server as wait_alias
from repro.solvers.service import solve_many

SOLVER = "H1"
PERIOD_BOUND = 12.0


@pytest.fixture(scope="module")
def instances():
    config = experiment_config("E1", 8, 6, n_instances=6)
    return generate_instances(config, seed=3)


@pytest.fixture(scope="module")
def reference(instances):
    outcome = solve_many(
        [(inst.application, inst.platform) for inst in instances],
        [SOLVER],
        period_bound=PERIOD_BOUND,
    )
    return [row[0].identity() for row in outcome.results]


def _spec(instance) -> SolveTaskSpec:
    return SolveTaskSpec(
        application=instance.application,
        platform=instance.platform,
        solver=SOLVER,
        period_bound=PERIOD_BOUND,
    )


def _socket(tmp_path) -> str:
    return str(tmp_path / "daemon.sock")


class TestDaemonBasics:
    def test_ping_stats_and_solve(self, tmp_path, instances, reference):
        sock = _socket(tmp_path)
        with DaemonThread(DaemonConfig(socket_path=sock, window=0.001)):
            with ServiceClient(sock) as client:
                assert client.ping() < 1.0
                stats = client.stats()
                assert stats["protocol"] == 1
                assert stats["draining"] is False
                result = client.solve(
                    instances[0].application,
                    instances[0].platform,
                    SOLVER,
                    period_bound=PERIOD_BOUND,
                )
                assert result.identity() == reference[0]

    def test_daemon_results_are_byte_identical_to_solve_many(
        self, tmp_path, instances, reference
    ):
        sock = _socket(tmp_path)
        with DaemonThread(DaemonConfig(socket_path=sock)):
            with ServiceClient(sock) as client:
                reply = client.solve_batch([_spec(i) for i in instances])
        assert [r.identity() for r in reply.results] == reference

    def test_client_side_dedupe_is_timing_independent(
        self, tmp_path, instances, reference
    ):
        sock = _socket(tmp_path)
        specs = [_spec(i) for i in instances[:3]] * 3
        with DaemonThread(DaemonConfig(socket_path=sock)):
            with ServiceClient(sock) as client:
                cold = client.solve_batch(specs)
                warm = client.solve_batch(specs)
        # the dedupe accounting is client-side, so it cannot depend on the
        # daemon's cache warmth (the batch CLI prints these numbers)
        assert cold.n_tasks == warm.n_tasks == 9
        assert cold.n_unique == warm.n_unique == 3
        for reply in (cold, warm):
            assert [r.identity() for r in reply.results] == [
                reference[i % 3] for i in range(9)
            ]
        # the second pass was served entirely by the daemon's warm cache
        assert warm.dispositions.get("cache", 0) == 3

    def test_unknown_solver_errors_but_connection_survives(
        self, tmp_path, instances
    ):
        sock = _socket(tmp_path)
        with DaemonThread(DaemonConfig(socket_path=sock)):
            with ServiceClient(sock) as client:
                bad = SolveTaskSpec(
                    application=instances[0].application,
                    platform=instances[0].platform,
                    solver="no-such-solver",
                    period_bound=PERIOD_BOUND,
                )
                with pytest.raises(ServiceError):
                    client.solve_batch([bad])
                # the error was scoped to the request, not the connection
                assert client.ping() < 1.0

    def test_wait_for_server_times_out_without_daemon(self, tmp_path):
        with pytest.raises(ServiceError, match="no solver daemon"):
            wait_for_server(tmp_path / "nobody.sock", timeout=0.3)
        assert wait_alias is wait_for_server


class TestSingleFlight:
    def test_concurrent_identical_requests_cost_one_solve(
        self, tmp_path, instances, reference
    ):
        """N in-flight clients for one digest -> exactly one solver run."""
        sock = _socket(tmp_path)
        n_clients = 4
        results = [None] * n_clients
        # a generous window holds the first request pending long enough
        # that the rest provably arrive while it is in flight
        host = DaemonThread(
            DaemonConfig(socket_path=sock, window=0.25)
        ).start()
        try:
            barrier = threading.Barrier(n_clients)

            def _one(slot: int) -> None:
                with ServiceClient(sock) as client:
                    barrier.wait()
                    results[slot] = client.solve(
                        instances[0].application,
                        instances[0].platform,
                        SOLVER,
                        period_bound=PERIOD_BOUND,
                    )

            threads = [
                threading.Thread(target=_one, args=(slot,))
                for slot in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            host.stop()
        for result in results:
            assert result is not None
            assert result.identity() == reference[0]
        # one unit of solve work, everyone else coalesced onto it
        assert host.daemon.n_solved == 1
        assert host.daemon.coalescer.n_enqueued == 1
        assert host.daemon.coalescer.n_coalesced == n_clients - 1

    def test_distinct_concurrent_requests_micro_batch(
        self, tmp_path, instances, reference
    ):
        sock = _socket(tmp_path)
        n_clients = len(instances)
        results = [None] * n_clients
        host = DaemonThread(
            DaemonConfig(socket_path=sock, window=0.25)
        ).start()
        try:
            barrier = threading.Barrier(n_clients)

            def _one(slot: int) -> None:
                with ServiceClient(sock) as client:
                    barrier.wait()
                    results[slot] = client.solve(
                        instances[slot].application,
                        instances[slot].platform,
                        SOLVER,
                        period_bound=PERIOD_BOUND,
                    )

            threads = [
                threading.Thread(target=_one, args=(slot,))
                for slot in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            host.stop()
        for slot, result in enumerate(results):
            assert result.identity() == reference[slot]
        # the window gathered concurrent distinct requests into few batches
        sizes = host.daemon.coalescer.batch_sizes
        assert sum(size * count for size, count in sizes.items()) == n_clients
        assert max(sizes) > 1, f"no micro-batch formed: {dict(sizes)}"


class TestDrain:
    def test_drain_finishes_in_flight_batch(self, tmp_path, instances, reference):
        """Drain requested mid-batch: the client still gets every result."""
        sock = _socket(tmp_path)
        host = DaemonThread(
            DaemonConfig(socket_path=sock, window=0.5)
        ).start()
        reply_box = {}

        def _client() -> None:
            with ServiceClient(sock) as client:
                reply_box["reply"] = client.solve_batch(
                    [_spec(i) for i in instances]
                )

        thread = threading.Thread(target=_client)
        thread.start()
        time.sleep(0.1)  # request is in flight, batch still windowed
        host.stop()  # drain: must flush and answer, not abandon
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        reply = reply_box["reply"]
        assert [r.identity() for r in reply.results] == reference

    def test_sigterm_mid_batch_completes_and_exits_zero(
        self, tmp_path, instances, reference
    ):
        """A real SIGTERM against a forked `repro serve` process."""
        sock = _socket(tmp_path)
        env = dict(os.environ)
        src = str(
            (os.path.dirname(__file__) or ".") + "/../src"
        )
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).strip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", sock, "--window", "0.5",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            wait_for_server(sock, timeout=30.0)
            reply_box = {}

            def _client() -> None:
                with ServiceClient(sock) as client:
                    reply_box["reply"] = client.solve_batch(
                        [_spec(i) for i in instances]
                    )

            thread = threading.Thread(target=_client)
            thread.start()
            time.sleep(0.15)  # batch submitted, window still open
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            returncode = proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()
        assert returncode == 0, proc.stderr.read()
        # the drained daemon answered the full batch before exiting
        reply = reply_box["reply"]
        assert [r.identity() for r in reply.results] == reference
        # and refuses new connections afterwards
        with pytest.raises(ServiceError):
            ServiceClient(sock)


class TestFrontierCoalescing:
    def test_distinct_thresholds_coalesce_onto_one_frontier_solve(
        self, tmp_path, instances
    ):
        """Concurrent same-instance requests differing only in threshold
        land in one group and are answered by a single frontier solve,
        byte-identical to the per-threshold path."""
        bounds = [8.0, 10.0, 12.0, 14.0]
        reference = [
            solve_many(
                [(instances[0].application, instances[0].platform)],
                [SOLVER],
                period_bound=bound,
            ).results[0][0].identity()
            for bound in bounds
        ]
        sock = _socket(tmp_path)
        results = [None] * len(bounds)
        host = DaemonThread(
            DaemonConfig(socket_path=sock, window=0.25)
        ).start()
        try:
            barrier = threading.Barrier(len(bounds))

            def _one(slot: int) -> None:
                with ServiceClient(sock) as client:
                    barrier.wait()
                    results[slot] = client.solve(
                        instances[0].application,
                        instances[0].platform,
                        SOLVER,
                        period_bound=bounds[slot],
                    )

            threads = [
                threading.Thread(target=_one, args=(slot,))
                for slot in range(len(bounds))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServiceClient(sock) as client:
                stats = client.stats()
        finally:
            host.stop()
        for slot, result in enumerate(results):
            assert result is not None
            assert result.identity() == reference[slot]
        frontier = stats["frontier"]
        assert frontier["n_groups"] >= 1
        assert frontier["n_thresholds"] == len(bounds)
        # the histogram records how many thresholds each frontier solve
        # answered; all four rode one group here
        assert frontier["group_sizes"] == {str(len(bounds)): 1}


class TestStatsEndpoint:
    def test_stats_surface_cache_and_batch_histogram(self, tmp_path, instances):
        sock = _socket(tmp_path)
        with DaemonThread(DaemonConfig(socket_path=sock)):
            with ServiceClient(sock) as client:
                specs = [_spec(i) for i in instances]
                client.solve_batch(specs)
                client.solve_batch(specs)
                stats = client.stats()
        cache = stats["cache"]
        assert set(cache) >= {
            "hits", "misses", "stores", "memory_hits", "disk_hits", "hit_rate",
        }
        # the second pass hit on every unique task
        assert cache["hit_rate"] >= 0.5
        coalescer = stats["coalescer"]
        assert coalescer["in_flight"] == 0
        assert coalescer["n_batches"] >= 1
        assert sum(
            int(size) * count
            for size, count in coalescer["batch_sizes"].items()
        ) == coalescer["n_enqueued"]
        requests = stats["requests"]
        assert requests["n_tasks"] == 2 * len(instances)
        assert requests["n_cache_hits"] >= len(instances)
        assert stats["cache_entries"] == len(instances)
        # the frontier counters sit next to the batch histogram even when
        # no group formed (every spec here shares one threshold)
        frontier = stats["frontier"]
        assert frontier["n_groups"] == 0
        assert frontier["n_thresholds"] == 0
        assert frontier["group_sizes"] == {}
