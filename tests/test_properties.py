"""Property-based tests (hypothesis) on the core invariants of the library.

The properties mirror the paper's structural facts:

* eq. (1)/(2) invariants of the cost model (positivity, Lemma 1 bound,
  single-interval degeneracy);
* exactness of the chains-to-chains probe and the dominance relation between
  the 1-D partitioning solvers;
* feasibility semantics of the heuristics (thresholds, monotonicity,
  structural validity of the produced mappings).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chains.homogeneous import bisect_optimal, dp_optimal, greedy_partition, nicol_optimal
from repro.chains.probe import probe_homogeneous
from repro.core.application import PipelineApplication
from repro.core.costs import evaluate, latency, optimal_latency, period, period_lower_bound
from repro.core.mapping import IntervalMapping
from repro.core.pareto import pareto_front
from repro.core.platform import Platform
from repro.heuristics import SplittingMonoLatency, SplittingMonoPeriod

# ----------------------------------------------------------------------------- #
# strategies
# ----------------------------------------------------------------------------- #
positive_floats = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
sizes = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def applications(draw, min_stages: int = 1, max_stages: int = 12):
    n = draw(st.integers(min_value=min_stages, max_value=max_stages))
    works = draw(
        st.lists(positive_floats, min_size=n, max_size=n)
    )
    comms = draw(st.lists(sizes, min_size=n + 1, max_size=n + 1))
    return PipelineApplication(works, comms)


@st.composite
def platforms(draw, min_procs: int = 1, max_procs: int = 8):
    p = draw(st.integers(min_value=min_procs, max_value=max_procs))
    speeds = draw(
        st.lists(
            st.integers(min_value=1, max_value=20), min_size=p, max_size=p
        )
    )
    bandwidth = draw(st.floats(min_value=1.0, max_value=50.0))
    return Platform.communication_homogeneous([float(s) for s in speeds], bandwidth)


@st.composite
def instances(draw):
    return draw(applications()), draw(platforms())


@st.composite
def weight_arrays(draw, max_size: int = 30):
    return np.asarray(
        draw(st.lists(positive_floats, min_size=1, max_size=max_size)), dtype=float
    )


# ----------------------------------------------------------------------------- #
# cost model properties
# ----------------------------------------------------------------------------- #
class TestCostModelProperties:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_lemma1_mapping_is_a_latency_lower_bound(self, instance):
        app, platform = instance
        opt = optimal_latency(app, platform)
        mapping = IntervalMapping.single_processor(app.n_stages, platform.fastest_processor)
        assert latency(app, platform, mapping) == opt
        # splitting off the first stage (when possible) can never reduce latency
        if app.n_stages >= 2 and platform.n_processors >= 2:
            order = platform.processors_by_speed()
            split = IntervalMapping(
                [(0, 0), (1, app.n_stages - 1)], [order[1], order[0]]
            )
            assert latency(app, platform, split) >= opt - 1e-9

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_single_interval_period_equals_latency(self, instance):
        app, platform = instance
        mapping = IntervalMapping.single_processor(app.n_stages, platform.fastest_processor)
        ev = evaluate(app, platform, mapping)
        assert ev.period == ev.latency

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_period_lower_bound_holds_for_lemma1_mapping(self, instance):
        app, platform = instance
        mapping = IntervalMapping.single_processor(app.n_stages, platform.fastest_processor)
        assert period(app, platform, mapping) >= period_lower_bound(app, platform) - 1e-9

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_latency_at_least_period_for_any_interval_count(self, instance):
        """For any mapping produced by H1, latency >= period (a data set spends
        at least one full bottleneck cycle in the pipeline)."""
        app, platform = instance
        result = SplittingMonoPeriod().run(app, platform, period_bound=1e-9)
        assert result.latency >= result.period - 1e-9


# ----------------------------------------------------------------------------- #
# chains-to-chains properties
# ----------------------------------------------------------------------------- #
class TestChainsProperties:
    @given(weight_arrays(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_probe_feasibility_matches_dp_optimum(self, values, p):
        optimum = dp_optimal(values, p).bottleneck
        assert probe_homogeneous(values, p, optimum).feasible
        if optimum > 1e-6:
            assert not probe_homogeneous(values, p, optimum * 0.99 - 1e-9).feasible

    @given(weight_arrays(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_solver_dominance_chain(self, values, p):
        """greedy >= bisect ~= nicol == dp (all valid partitions)."""
        dp = dp_optimal(values, p)
        nicol = nicol_optimal(values, p)
        bisect = bisect_optimal(values, p)
        greedy = greedy_partition(values, p)
        assert nicol.bottleneck <= dp.bottleneck * (1 + 1e-9)
        assert nicol.bottleneck >= dp.bottleneck * (1 - 1e-9)
        assert bisect.bottleneck >= dp.bottleneck * (1 - 1e-9)
        assert greedy.bottleneck >= dp.bottleneck * (1 - 1e-9)
        n = len(values)
        for result in (dp, nicol, bisect, greedy):
            assert result.covers(n)
            assert result.n_intervals <= p

    @given(weight_arrays(max_size=20), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_optimum_is_monotone_in_processor_count(self, values, p):
        more = dp_optimal(values, p + 1).bottleneck
        fewer = dp_optimal(values, p).bottleneck
        assert more <= fewer * (1 + 1e-12) + 1e-12


# ----------------------------------------------------------------------------- #
# heuristic properties
# ----------------------------------------------------------------------------- #
class TestHeuristicProperties:
    @given(instances(), st.floats(min_value=0.5, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_h1_feasibility_flag_is_truthful(self, instance, bound):
        app, platform = instance
        result = SplittingMonoPeriod().run(app, platform, period_bound=bound)
        assert result.feasible == (result.period <= bound * (1 + 1e-9) + 1e-12)
        result.mapping.validate(app, platform)

    @given(instances(), st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_h5_respects_latency_budget(self, instance, factor):
        app, platform = instance
        bound = optimal_latency(app, platform) * factor
        result = SplittingMonoLatency().run(app, platform, latency_bound=bound)
        assert result.feasible
        assert result.latency <= bound * (1 + 1e-9) + 1e-12
        assert result.period <= result.history[0][0] + 1e-9

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_h1_history_is_pareto_consistent(self, instance):
        """Along H1's trajectory the period decreases monotonically."""
        app, platform = instance
        result = SplittingMonoPeriod().run(app, platform, period_bound=1e-9)
        periods = [p for p, _ in result.history]
        assert all(b <= a + 1e-9 for a, b in zip(periods, periods[1:]))


# ----------------------------------------------------------------------------- #
# pareto front properties
# ----------------------------------------------------------------------------- #
class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=0,
            max_size=50,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_front_is_subset_and_non_dominated(self, points):
        front = pareto_front(points)
        tuples = [(p.period, p.latency) for p in front]
        for t in tuples:
            assert t in points or not points
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not a.dominates(b)
