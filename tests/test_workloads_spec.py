"""Tests of the declarative workload spec layer (serialisation + identity)."""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads import (
    SPEC_SCHEMA,
    InstanceSource,
    WorkloadJob,
    WorkloadSpec,
    load_spec,
    spec_from_document,
    spec_to_document,
)

GENERATOR_DOC = {
    "name": "demo",
    "seed": 3,
    "source": {
        "kind": "generator",
        "family": "E1",
        "n_stages": 5,
        "n_processors": 4,
        "n_instances": 3,
    },
    "jobs": [{"solvers": ["H1"], "thresholds": [6.0]}],
}


def _explicit_doc(instances):
    return {
        "source": {"kind": "explicit", "instances": instances},
        "solvers": ["H1"],
        "thresholds": [5.0],
    }


INSTANCE_A = {
    "application": {"works": [2.0, 3.0], "comm_sizes": [1.0, 1.0, 1.0]},
    "platform": {"speeds": [2.0, 1.0], "bandwidth": 4.0},
}
INSTANCE_B = {
    "application": {"works": [7.0], "comm_sizes": [2.0, 2.0]},
    "platform": {"speeds": [3.0], "bandwidth": 5.0},
}


class TestDocumentRoundTrip:
    def test_round_trip_preserves_digest(self):
        spec = spec_from_document(GENERATOR_DOC)
        document = spec_to_document(spec)
        assert document["schema"] == SPEC_SCHEMA
        assert spec_from_document(document).digest == spec.digest

    def test_top_level_solvers_sugar_equals_explicit_jobs(self):
        sugar = dict(GENERATOR_DOC)
        del sugar["jobs"]
        sugar["solvers"] = ["H1"]
        sugar["thresholds"] = [6.0]
        assert spec_from_document(sugar).digest == (
            spec_from_document(GENERATOR_DOC).digest
        )

    def test_key_order_is_irrelevant(self):
        shuffled = dict(reversed(list(GENERATOR_DOC.items())))
        assert spec_from_document(shuffled).digest == (
            spec_from_document(GENERATOR_DOC).digest
        )

    def test_name_participates_in_digest_but_instance_names_do_not(self):
        named = dict(GENERATOR_DOC, name="other")
        assert spec_from_document(named).digest != (
            spec_from_document(GENERATOR_DOC).digest
        )
        renamed = {
            "application": dict(INSTANCE_A["application"], name="zebra"),
            "platform": dict(INSTANCE_A["platform"], name="zebra"),
        }
        assert spec_from_document(_explicit_doc([INSTANCE_A])).digest == (
            spec_from_document(_explicit_doc([renamed])).digest
        )

    def test_explicit_instance_permutation_is_irrelevant(self):
        forward = spec_from_document(_explicit_doc([INSTANCE_A, INSTANCE_B]))
        backward = spec_from_document(_explicit_doc([INSTANCE_B, INSTANCE_A]))
        assert forward.digest == backward.digest


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="workload kind"):
            spec_from_document(dict(GENERATOR_DOC, kind="nope"))

    def test_unknown_source_kind_rejected(self):
        bad = dict(GENERATOR_DOC, source={"kind": "nope"})
        with pytest.raises(ConfigurationError, match="instance-source kind"):
            spec_from_document(bad)

    def test_solve_spec_needs_jobs(self):
        bad = {"source": GENERATOR_DOC["source"]}
        with pytest.raises(ConfigurationError, match="at least one job"):
            spec_from_document(bad)

    def test_differential_spec_rejects_jobs(self):
        with pytest.raises(ConfigurationError, match="oracle"):
            spec_from_document(dict(GENERATOR_DOC, kind="differential"))

    def test_differential_spec_accepts_n_datasets(self):
        document = {
            "kind": "differential",
            "source": {"kind": "scenarios", "count": 5},
            "n_datasets": 4,
        }
        spec = spec_from_document(document)
        assert spec.n_datasets == 4
        assert spec_to_document(spec)["n_datasets"] == 4

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            spec_from_document(dict(GENERATOR_DOC, schema=99))

    def test_missing_source_rejected(self):
        with pytest.raises(ConfigurationError, match="source"):
            spec_from_document({"solvers": ["H1"]})

    def test_bad_threshold_rejected(self):
        bad = dict(GENERATOR_DOC, jobs=[{"solvers": ["H1"], "thresholds": ["x"]}])
        with pytest.raises(ConfigurationError, match="threshold"):
            spec_from_document(bad)

    def test_generator_source_requires_sizes(self):
        with pytest.raises(ConfigurationError, match="n_stages"):
            InstanceSource(kind="generator", family="E1")

    def test_job_needs_solvers(self):
        with pytest.raises(ConfigurationError, match="at least one solver"):
            WorkloadJob(solvers=())

    def test_repeats_must_be_positive(self):
        source = spec_from_document(GENERATOR_DOC).source
        with pytest.raises(ConfigurationError, match="repeats"):
            WorkloadSpec(
                source=source,
                jobs=(WorkloadJob(solvers=("H1",)),),
                repeats=0,
            )


class TestLoadSpec:
    def test_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(GENERATOR_DOC), encoding="utf-8")
        assert load_spec(path).digest == spec_from_document(GENERATOR_DOC).digest

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "demo"',
                    "seed = 3",
                    "[source]",
                    'kind = "generator"',
                    'family = "E1"',
                    "n_stages = 5",
                    "n_processors = 4",
                    "n_instances = 3",
                    "[[jobs]]",
                    'solvers = ["H1"]',
                    "thresholds = [6.0]",
                ]
            ),
            encoding="utf-8",
        )
        assert load_spec(path).digest == spec_from_document(GENERATOR_DOC).digest

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_spec(path)

    def test_invalid_toml_rejected(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text("= nope", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            load_spec(path)
