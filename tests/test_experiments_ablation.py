"""Tests of the ablation studies."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    exploration_width_ablation,
    processor_order_ablation,
    selection_rule_ablation,
)
from repro.experiments.report import render_ablation
from repro.generators.experiments import experiment_config, generate_instances


@pytest.fixture(scope="module")
def config():
    return experiment_config("E2", 10, 8, n_instances=6)


@pytest.fixture(scope="module")
def instances(config):
    return generate_instances(config, seed=4)


class TestSelectionRuleAblation:
    def test_two_variants(self, config, instances):
        rows = selection_rule_ablation(config, instances=instances)
        assert len(rows) == 2
        assert any("mono" in r.variant for r in rows)
        assert any("ratio" in r.variant for r in rows)
        for row in rows:
            assert row.mean_best_period > 0
            assert row.mean_latency_at_best > 0
            assert row.mean_splits >= 0


class TestExplorationWidthAblation:
    def test_four_variants(self, config, instances):
        rows = exploration_width_ablation(config, instances=instances)
        assert len(rows) == 4
        variants = [r.variant for r in rows]
        assert any("H1" in v for v in variants)
        assert any("H2" in v for v in variants)

    def test_three_way_never_uses_more_splits_than_processors(self, config, instances):
        rows = exploration_width_ablation(config, instances=instances)
        p = config.n_processors
        for row in rows:
            assert row.mean_splits <= p


class TestProcessorOrderAblation:
    def test_three_orders(self, config, instances):
        rows = processor_order_ablation(config, instances=instances)
        assert [r.variant for r in rows] == [
            "speed order: descending",
            "speed order: ascending",
            "speed order: random",
        ]

    def test_descending_order_is_best_on_average(self, config, instances):
        """Sorting processors by decreasing speed (the paper's choice) reaches a
        period at least as good as the ascending order."""
        rows = processor_order_ablation(config, instances=instances)
        by_variant = {r.variant: r for r in rows}
        assert (
            by_variant["speed order: descending"].mean_best_period
            <= by_variant["speed order: ascending"].mean_best_period + 1e-9
        )


class TestRendering:
    def test_render_ablation(self, config, instances):
        rows = selection_rule_ablation(config, instances=instances)
        text = render_ablation(rows, title="selection rule")
        assert "selection rule" in text
        assert "mean best period" in text
