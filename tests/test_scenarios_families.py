"""Scenario-family engine: determinism, canonical hashing, sweep glue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.application import PipelineApplication
from repro.core.platform import Platform, PlatformClass
from repro.experiments.sweep import run_sweep
from repro.scenarios import (
    FAMILIES,
    canonical_instance_document,
    family_names,
    generate_scenarios,
    get_family,
    instance_digest,
    resolve_families,
    scenario_instances,
    scenario_sweep_config,
)

_UNIT_DIGEST = instance_digest(
    PipelineApplication([1.0], [1.0, 1.0]), Platform([1.0], 1.0)
)


class TestHashing:
    def test_digest_is_stable_and_name_free(self):
        app_a = PipelineApplication([1.0], [1.0, 1.0], name="alpha")
        app_b = PipelineApplication([1.0], [1.0, 1.0], name="beta")
        platform_a = Platform([1.0], 1.0, name="gamma")
        platform_b = Platform([1.0], 1.0, name="delta")
        assert instance_digest(app_a, platform_a) == instance_digest(app_b, platform_b)
        assert instance_digest(app_a, platform_a) == _UNIT_DIGEST
        assert len(_UNIT_DIGEST) == 64

    def test_digest_distinguishes_values(self):
        app = PipelineApplication([1.0], [1.0, 1.0])
        platform = Platform([1.0], 1.0)
        changed_app = PipelineApplication([2.0], [1.0, 1.0])
        changed_platform = Platform([1.0], 2.0)
        assert instance_digest(changed_app, platform) != _UNIT_DIGEST
        assert instance_digest(app, changed_platform) != _UNIT_DIGEST

    def test_heterogeneous_platform_document_has_matrix(self):
        matrix = [[0.0, 2.0, 3.0], [2.0, 0.0, 4.0], [3.0, 4.0, 0.0]]
        platform = Platform.fully_heterogeneous([1.0, 2.0, 3.0], matrix)
        app = PipelineApplication([1.0], [1.0, 1.0])
        document = canonical_instance_document(app, platform)
        assert "bandwidth_matrix" in document["platform"]
        assert "bandwidth" not in document["platform"]
        # display metadata is stripped from the hashed encoding
        for sub_document in document.values():
            assert "name" not in sub_document
            assert "type" not in sub_document


class TestFamilies:
    def test_registry_lookup_and_suggestions(self):
        assert get_family("homogeneous-chain").name == "homogeneous-chain"
        with pytest.raises(KeyError, match="did you mean"):
            get_family("homogeneus-chain")
        assert [f.name for f in resolve_families(None)] == family_names()
        assert [f.name for f in resolve_families("all")] == family_names()
        assert [f.name for f in resolve_families(["single-stage"])] == ["single-stage"]

    def test_streams_are_deterministic_and_prefix_stable(self):
        first = generate_scenarios(24, seed=7)
        second = generate_scenarios(24, seed=7)
        assert [s.digest for s in first] == [s.digest for s in second]
        prefix = generate_scenarios(8, seed=7)
        assert [s.digest for s in prefix] == [s.digest for s in first[:8]]
        different = generate_scenarios(8, seed=8)
        assert [s.digest for s in prefix] != [s.digest for s in different]

    def test_streams_are_worker_invariant(self):
        serial = generate_scenarios(12, seed=3)
        pooled = generate_scenarios(12, seed=3, workers=3, batch_size=2)
        assert [s.digest for s in serial] == [s.digest for s in pooled]

    def test_round_robin_covers_selected_families(self):
        scenarios = generate_scenarios(
            6, ["single-stage", "bottleneck-link"], seed=0
        )
        assert [s.family for s in scenarios] == [
            "single-stage", "bottleneck-link",
        ] * 3

    def test_every_family_builds_valid_instances(self):
        for name, family in FAMILIES.items():
            for scenario in generate_scenarios(6, name, seed=1):
                app, platform = scenario.application, scenario.platform
                assert app.n_stages >= 1
                assert platform.n_processors >= 1
                assert np.all(app.works >= 0)
                assert np.all(app.comm_sizes >= 0)
                assert np.all(platform.speeds > 0)
                assert scenario.family == name

    def test_family_corners(self):
        for scenario in generate_scenarios(5, "homogeneous-chain", seed=2):
            assert scenario.platform.is_fully_homogeneous
        for scenario in generate_scenarios(5, "single-stage", seed=2):
            assert scenario.application.n_stages == 1
        hetero = generate_scenarios(8, "heterogeneous-links", seed=2)
        assert any(
            s.platform.platform_class is PlatformClass.FULLY_HETEROGENEOUS
            for s in hetero
        )
        zero = generate_scenarios(8, "zero-cost-stages", seed=2)
        assert any(np.any(s.application.works == 0.0) for s in zero)
        assert any(np.any(s.application.comm_sizes == 0.0) for s in zero)
        large = generate_scenarios(3, "large-chain", seed=2)
        assert all(s.application.n_stages >= 24 for s in large)


class TestSweepGlue:
    def test_scenario_instances_feed_the_sweep_driver(self):
        instances = scenario_instances(6, "heterogeneous-chain", seed=4)
        config = scenario_sweep_config("heterogeneous-chain", 6)
        assert config.family == "scenario:heterogeneous-chain"
        result = run_sweep(
            config, heuristics=["H1", "H5"], n_thresholds=3, instances=instances
        )
        assert set(result.curves) == {"Sp mono P", "Sp mono L"}
        for curve in result.curves.values():
            assert len(curve.points) == 3
            assert all(point.n_instances == 6 for point in curve.points)

    def test_scenario_instances_are_deterministic(self):
        a = scenario_instances(5, "extreme-skew", seed=9)
        b = scenario_instances(5, "extreme-skew", seed=9)
        for x, y in zip(a, b):
            assert x.application == y.application
            assert x.platform == y.platform
            assert x.index == y.index
