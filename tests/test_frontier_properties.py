"""Hypothesis property suite of the frontier-solve layer.

The frontier contract (:mod:`repro.solvers.frontier`): for every
frontier-capable solver, one frontier run answers *any* threshold with a
result **bit-identical** (``SolveResult.identity``) to solving that
threshold directly — including thresholds below the infeasible knee, where
the extracted result must report infeasibility exactly like the direct
path.  This suite pins that contract on random instances from all eight
scenario families, and cross-checks the extracted curves against the exact
Pareto front (:func:`brute_force_pareto_front`) on instances small enough
to enumerate: exact solvers must sit *on* the front, heuristics must never
beat it, and extraction must walk the curve monotonically.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.core.costs import evaluate, optimal_latency_mapping, period_lower_bound
from repro.exact.brute_force import brute_force_pareto_front
from repro.scenarios.families import family_names, generate_scenarios
from repro.solvers.base import Objective
from repro.solvers.frontier import frontier_eligible, frontier_solve
from repro.solvers.registry import get_solver

ALL_FAMILIES = family_names()

#: the frontier-capable registry solvers, by replay mode
STEPS_SOLVERS = ("H1", "H2", "H3")
MONOTONE_SOLVERS = (
    "hom-dp-latency-for-period",
    "hom-dp-period-for-latency",
    "bitmask-dp-latency-for-period",
)
FRONTIER_SOLVERS = STEPS_SOLVERS + MONOTONE_SOLVERS

#: bitmask-DP size gate (matches the differential oracle's)
_BM_MAX_STAGES, _BM_MAX_PROCS = 14, 8
#: brute-force enumeration gate for the Pareto-front oracle
_BF_MAX_STAGES, _BF_MAX_PROCS = 8, 5

_REL = 1e-9
_LOOSE_REL = 1e-6
#: skip feasibility comparisons this close to the threshold boundary
#: (different solvers use different epsilon conventions there)
_MARGIN = 1e-7


def _applicable(name: str, app, platform) -> bool:
    """Platform/size gates, mirroring the registry's capability checks."""
    if name.startswith("hom-dp"):
        return platform.is_fully_homogeneous
    if name.startswith("bitmask-dp"):
        return (
            platform.is_communication_homogeneous
            and app.n_stages <= _BM_MAX_STAGES
            and platform.n_processors <= _BM_MAX_PROCS
        )
    return platform.is_communication_homogeneous


def _anchors(app, platform) -> tuple[float, float, float]:
    """(period lower bound, achievable period, optimal latency)."""
    ev1 = evaluate(app, platform, optimal_latency_mapping(app, platform))
    return period_lower_bound(app, platform), ev1.period, ev1.latency


def _threshold_range(solver, app, platform) -> tuple[float, float]:
    """A [lo, hi] span straddling the solver's infeasible knee."""
    p_lb, period_hi, latency_opt = _anchors(app, platform)
    if solver.objective == Objective.MIN_LATENCY_FOR_PERIOD:
        return 0.25 * p_lb, 1.25 * period_hi
    return 0.5 * latency_opt, 1.5 * latency_opt


def _request(solver, threshold: float):
    if solver.objective == Objective.MIN_LATENCY_FOR_PERIOD:
        return solver.default_request(period_bound=threshold)
    return solver.default_request(latency_bound=threshold)


def _thresholds(lo: float, hi: float, fractions) -> list[float]:
    """Distinct strictly-positive thresholds at ``fractions`` of [lo, hi]."""
    return list(
        dict.fromkeys(max(lo + f * (hi - lo), 1e-6) for f in fractions)
    )


def _assert_extraction_identity(solver, app, platform, thresholds) -> None:
    """frontier_solve's answers == direct solves, bit for bit."""
    assert frontier_eligible(solver, _request(solver, thresholds[0]))
    _, extracted, _ = frontier_solve(solver, app, platform, thresholds)
    for threshold, from_frontier in zip(thresholds, extracted):
        direct = solver.solve(app, platform, _request(solver, threshold))
        assert from_frontier.identity() == direct.identity(), (
            f"{solver.name}@{threshold!r}: frontier extraction differs "
            f"from the direct solve"
        )


class TestExtractionIdentity:
    @given(
        family=st.sampled_from(ALL_FAMILIES),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        fractions=st.tuples(
            st.floats(min_value=0.05, max_value=1.45),
            st.floats(min_value=0.05, max_value=1.45),
            st.floats(min_value=0.05, max_value=1.45),
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_extracted_result_equals_direct_solve(
        self, family, seed, fractions
    ):
        scenario = generate_scenarios(1, family, seed=seed)[0]
        app, platform = scenario.application, scenario.platform
        names = [n for n in FRONTIER_SOLVERS if _applicable(n, app, platform)]
        assume(names)
        for name in names:
            solver = get_solver(name)
            lo, hi = _threshold_range(solver, app, platform)
            _assert_extraction_identity(
                solver, app, platform, _thresholds(lo, hi, fractions)
            )

    def test_every_family_and_solver_covered(self):
        """Deterministic sweep: each family and each frontier solver is
        exercised by at least one extraction-identity check (the drawn
        examples above cannot guarantee that)."""
        covered: set[tuple[str, str]] = set()
        for family in ALL_FAMILIES:
            for seed in range(3):
                scenario = generate_scenarios(1, family, seed=seed)[0]
                app, platform = scenario.application, scenario.platform
                for name in FRONTIER_SOLVERS:
                    if not _applicable(name, app, platform):
                        continue
                    solver = get_solver(name)
                    lo, hi = _threshold_range(solver, app, platform)
                    _assert_extraction_identity(
                        solver, app, platform,
                        _thresholds(lo, hi, (0.1, 0.5, 0.9, 1.3)),
                    )
                    covered.add((family, name))
        assert {name for _, name in covered} == set(FRONTIER_SOLVERS)
        # heterogeneous-links platforms are communication-heterogeneous,
        # outside the platform class of every frontier-capable solver
        assert {family for family, _ in covered} == (
            set(ALL_FAMILIES) - {"heterogeneous-links"}
        )


class TestInfeasibleKnee:
    @given(
        family=st.sampled_from(ALL_FAMILIES),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_query_below_the_knee_matches_direct_infeasibility(
        self, family, seed
    ):
        """A threshold below anything achievable: the extracted result must
        carry the same feasibility flag — and, for the exact solvers, the
        same infeasibility details — as the direct path."""
        scenario = generate_scenarios(1, family, seed=seed)[0]
        app, platform = scenario.application, scenario.platform
        names = [n for n in FRONTIER_SOLVERS if _applicable(n, app, platform)]
        assume(names)
        p_lb, _, latency_opt = _anchors(app, platform)
        for name in names:
            solver = get_solver(name)
            if solver.objective == Objective.MIN_LATENCY_FOR_PERIOD:
                below = max(0.25 * p_lb, 1e-6)
            else:
                below = max(0.5 * latency_opt, 1e-6)
            _, (from_frontier,), _ = frontier_solve(
                solver, app, platform, [below]
            )
            direct = solver.solve(app, platform, _request(solver, below))
            assert from_frontier.feasible == direct.feasible
            assert from_frontier.identity() == direct.identity()
            if name in MONOTONE_SOLVERS and below < p_lb * (1 - _MARGIN):
                # exact period solvers cannot beat the period lower bound
                if solver.objective == Objective.MIN_LATENCY_FOR_PERIOD:
                    assert not from_frontier.feasible


class TestFrontierShape:
    def _small_scenarios(self):
        for family in ALL_FAMILIES:
            for seed in range(6):
                scenario = generate_scenarios(1, family, seed=seed)[0]
                app, platform = scenario.application, scenario.platform
                if (
                    app.n_stages <= _BF_MAX_STAGES
                    and platform.n_processors <= _BF_MAX_PROCS
                ):
                    yield app, platform

    def test_extracted_curves_are_monotone_and_never_beat_the_front(self):
        """Walking the threshold grid upward, extraction moves monotonically
        along the recorded curve; against the exact Pareto front, heuristics
        never win and the exact DPs sit on it."""
        n_checked = 0
        for app, platform in self._small_scenarios():
            front = brute_force_pareto_front(app, platform)
            names = [
                n for n in FRONTIER_SOLVERS if _applicable(n, app, platform)
            ]
            for name in names:
                solver = get_solver(name)
                if solver.objective != Objective.MIN_LATENCY_FOR_PERIOD:
                    continue
                lo, hi = _threshold_range(solver, app, platform)
                grid = _thresholds(lo, hi, [i / 9 for i in range(10)])
                _, extracted, _ = frontier_solve(solver, app, platform, grid)
                feasible = [r.feasible for r in extracted]
                # feasibility is monotone in the threshold
                assert feasible == sorted(feasible)
                achieved = [r for r in extracted if r.feasible]
                for a, b in zip(achieved, achieved[1:]):
                    # a looser threshold never forces a tighter period
                    assert a.period <= b.period * (1 + _REL)
                for threshold, result in zip(grid, extracted):
                    if not result.feasible:
                        continue
                    assert result.period <= threshold * (1 + _REL)
                    best = min(
                        (
                            point.latency
                            for point in front
                            if point.period <= threshold * (1 + _MARGIN)
                        ),
                        default=None,
                    )
                    assert best is not None, (
                        f"{name}: feasible at {threshold!r} where the exact "
                        f"front has no point"
                    )
                    # never non-dominated *past* the optimal front
                    assert result.latency >= best * (1 - _LOOSE_REL)
                    if name in MONOTONE_SOLVERS:
                        # the exact solvers' points lie on the front
                        assert result.latency <= best * (1 + _LOOSE_REL)
                    n_checked += 1
        assert n_checked > 0
