"""Tests of the model-validation helper (analytical vs simulated metrics)."""

from __future__ import annotations

import pytest

from repro.heuristics import get_heuristic
from repro.simulation.validate import ModelValidation, validate_mapping
from tests.conftest import random_instance


class TestValidateMapping:
    def test_report_fields_are_consistent(self):
        app, platform = random_instance(10, 6, seed=4)
        mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
        report = validate_mapping(app, platform, mapping, n_datasets=40)
        assert isinstance(report, ModelValidation)
        assert report.n_datasets == 40
        assert report.analytical_period > 0
        assert report.analytical_latency >= report.analytical_period - 1e-9
        assert report.event_driven_first_latency == pytest.approx(
            report.analytical_latency, rel=1e-9
        )
        assert report.synchronous_period == pytest.approx(
            report.analytical_period, rel=1e-9
        )

    def test_relative_errors_small_on_e_families(self):
        """Across all four experiment families the greedy one-port schedule
        stays within a few percent of the analytical model."""
        for family in ("E1", "E2", "E3", "E4"):
            app, platform = random_instance(10, 8, seed=3, family=family)
            mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
            report = validate_mapping(app, platform, mapping, n_datasets=60)
            assert report.period_relative_error <= 0.05
            assert report.latency_relative_error <= 1e-6
            assert report.consistent

    def test_relative_error_zero_for_single_interval(self, small_app, small_platform, single_interval_mapping):
        report = validate_mapping(
            small_app, small_platform, single_interval_mapping, n_datasets=20
        )
        assert report.period_relative_error == pytest.approx(0.0, abs=1e-9)
        assert report.latency_relative_error == pytest.approx(0.0, abs=1e-9)

    def test_zero_analytical_degenerate_case(self):
        """Degenerate zero-cost pipelines do not divide by zero."""
        from repro.core.application import PipelineApplication
        from repro.core.mapping import IntervalMapping
        from repro.core.platform import Platform

        app = PipelineApplication([0.0], [0.0, 0.0])
        platform = Platform([1.0], 10.0)
        mapping = IntervalMapping.single_processor(1, 0)
        report = validate_mapping(app, platform, mapping, n_datasets=5)
        assert report.period_relative_error == 0.0
        assert report.latency_relative_error == 0.0
