"""Tests of the constructive synchronous schedule."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate
from repro.core.exceptions import SimulationError
from repro.heuristics import get_heuristic
from repro.simulation.synchronous import synchronous_schedule
from tests.conftest import random_instance


class TestConstruction:
    def test_period_and_latency_match_formulas_exactly(self):
        """The synchronous schedule realises eqs. (1) and (2) exactly."""
        for seed in range(5):
            app, platform = random_instance(10, 6, seed=seed)
            mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
            ev = evaluate(app, platform, mapping)
            trace = synchronous_schedule(app, platform, mapping, n_datasets=12)
            assert trace.measured_period() == pytest.approx(ev.period, rel=1e-9)
            # every data set has the same latency, equal to eq. (2)
            for k in range(trace.n_datasets):
                assert trace.latency_of(k) == pytest.approx(ev.latency, rel=1e-9)

    def test_schedule_is_feasible(self):
        """No processor overlap, data sets processed in order: the schedule is
        an executable witness that the analytical metrics are achievable."""
        for seed in range(5):
            app, platform = random_instance(12, 8, seed=seed)
            mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
            trace = synchronous_schedule(app, platform, mapping, n_datasets=10)
            trace.check_no_overlap()
            trace.check_dataset_order()

    def test_single_interval_mapping(self, small_app, small_platform, single_interval_mapping):
        trace = synchronous_schedule(
            small_app, small_platform, single_interval_mapping, n_datasets=4
        )
        ev = evaluate(small_app, small_platform, single_interval_mapping)
        assert trace.max_latency == pytest.approx(ev.latency)
        trace.check_no_overlap()


class TestCustomPeriod:
    def test_larger_period_is_allowed(self, small_app, small_platform, two_interval_mapping):
        ev = evaluate(small_app, small_platform, two_interval_mapping)
        trace = synchronous_schedule(
            small_app,
            small_platform,
            two_interval_mapping,
            n_datasets=8,
            period=ev.period * 2,
        )
        trace.check_no_overlap()
        assert trace.measured_period() == pytest.approx(ev.period * 2)

    def test_smaller_period_rejected(self, small_app, small_platform, two_interval_mapping):
        ev = evaluate(small_app, small_platform, two_interval_mapping)
        with pytest.raises(SimulationError):
            synchronous_schedule(
                small_app,
                small_platform,
                two_interval_mapping,
                n_datasets=4,
                period=ev.period * 0.5,
            )

    def test_invalid_dataset_count(self, small_app, small_platform, two_interval_mapping):
        with pytest.raises(SimulationError):
            synchronous_schedule(
                small_app, small_platform, two_interval_mapping, n_datasets=0
            )
