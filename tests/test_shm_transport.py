"""The zero-pickle instance transport (:mod:`repro.utils.shm`) and the
ship-once pool plumbing (:mod:`repro.utils.parallel`).

Contracts under test:

* the arena publishes each **unique** instance once (dedup by canonical
  digest) and workers rehydrate each digest **at most once per process**,
  no matter how many tasks reference it — asserted from inside real pool
  workers via :func:`repro.utils.shm.worker_attach_counts`;
* rehydrated instances are exact: the canonical JSON payloads round-trip
  the float values bit for bit, so pooled reports stay byte-identical to
  serial ones under every ``transport`` knob;
* the transport degrades gracefully: no ``/dev/shm`` (``REPRO_DISABLE_SHM``)
  means inline bytes through the initializer — still once per worker;
* the mapped function travels through the pool **initializer**, never
  inside task tuples (the historical once-per-chunk pickling);
* ``available_cpus`` respects the scheduler affinity mask, so cgroup- or
  ``taskset``-restricted jobs size their pools by their actual allowance.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.core.identity import instance_digest
from repro.generators.experiments import experiment_config, generate_instances
from repro.solvers.service import solve_many
from repro.utils import parallel, shm
from repro.utils.parallel import available_cpus, parallel_map
from repro.utils.shm import InstanceArena, InstanceRef, resolve_instance


def _instances(n: int = 4):
    config = experiment_config("E2", 6, 5, n_instances=n)
    return generate_instances(config, seed=23)


def _pairs(instances):
    return [(inst.application, inst.platform) for inst in instances]


def _resolve_and_snapshot(ref: InstanceRef):
    """Pool task: resolve one ref, report this worker's rehydration counts."""
    app, platform = resolve_instance(ref)
    return os.getpid(), app.n_stages, dict(shm.worker_attach_counts())


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return False
    return True


# ----------------------------------------------------------------------------- #
# the arena
# ----------------------------------------------------------------------------- #
class TestInstanceArena:
    def test_publishes_each_unique_instance_once(self):
        instances = _instances(3)
        pairs = _pairs(instances)
        with InstanceArena(pairs * 5) as arena:  # repeated stream, 3 unique
            assert arena.n_instances == 3
            for app, platform in pairs:
                assert arena.ref(app, platform) == InstanceRef(
                    instance_digest(app, platform)
                )

    def test_ref_of_unpublished_instance_raises(self):
        first, second = _instances(2)
        with InstanceArena([(first.application, first.platform)]) as arena:
            with pytest.raises(KeyError):
                arena.ref(second.application, second.platform)

    def test_refs_pickle_small(self):
        """The point of the transport: tasks carry digests, not instances."""
        config = experiment_config("E2", 24, 8, n_instances=1)
        inst = generate_instances(config, seed=23)[0]
        pair = (inst.application, inst.platform)
        with InstanceArena([pair]) as arena:
            ref = arena.ref(*pair)
            assert len(pickle.dumps(ref)) < len(pickle.dumps(pair)) / 10

    def test_rehydration_is_exact(self):
        """Round-tripped instances have the same canonical digest."""
        for inst in _instances(4):
            pair = (inst.application, inst.platform)
            with InstanceArena([pair]) as arena:
                arena.shipment().install()
                app, platform = resolve_instance(arena.ref(*pair))
            assert instance_digest(app, platform) == instance_digest(*pair)
            assert app.name == inst.application.name
            assert platform.name == inst.platform.name

    def test_inline_fallback_without_shared_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        instances = _instances(2)
        with InstanceArena(_pairs(instances)) as arena:
            assert not arena.uses_shared_memory
            shipment = arena.shipment()
            assert shipment.segment is None and shipment.inline is not None
            shipment.install()
            for inst in instances:
                pair = (inst.application, inst.platform)
                app, platform = resolve_instance(arena.ref(*pair))
                assert instance_digest(app, platform) == instance_digest(*pair)


# ----------------------------------------------------------------------------- #
# segment lifetime: no stale /dev/shm files, however the parent dies
# ----------------------------------------------------------------------------- #
_ARENA_SCRIPT = """\
import sys
from repro.generators.experiments import experiment_config, generate_instances
from repro.utils.shm import InstanceArena

config = experiment_config("E2", 4, 3, n_instances=1)
inst = generate_instances(config, seed=5)[0]
arena = InstanceArena([(inst.application, inst.platform)])
assert arena.uses_shared_memory
print(arena.shipment().segment, flush=True)
if "--hang" in sys.argv:
    import time
    time.sleep(120)
# otherwise: exit WITHOUT close() — the atexit guard must unlink the segment
"""


@pytest.mark.skipif(not shm.shm_supported(), reason="needs /dev/shm")
class TestSegmentLifetime:
    def _spawn(self, *extra: str) -> tuple[subprocess.Popen, str]:
        process = subprocess.Popen(
            [sys.executable, "-c", _ARENA_SCRIPT, *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        segment = process.stdout.readline().strip()
        assert segment, "the child never published a segment"
        return process, os.path.join("/dev/shm", segment)

    @staticmethod
    def _wait_gone(path: str, timeout: float = 15.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not os.path.exists(path):
                return True
            time.sleep(0.1)
        return not os.path.exists(path)

    def test_killed_parent_leaves_no_stale_segment(self):
        """SIGKILL skips atexit and __del__ both; the resource tracker —
        a separate process that outlives the parent — unlinks the segment
        the parent registered at creation."""
        process, path = self._spawn("--hang")
        try:
            assert os.path.exists(path)
            process.kill()
            process.wait(timeout=30)
            assert self._wait_gone(path), f"stale segment {path} after SIGKILL"
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()

    def test_exit_without_close_leaves_no_stale_segment(self):
        """A parent that simply returns without close() triggers the atexit
        guard, which unlinks (and deregisters) the segment — so the
        resource tracker has nothing to complain about either."""
        process, path = self._spawn()
        _, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        assert self._wait_gone(path), f"stale segment {path} after clean exit"
        assert "leaked shared_memory" not in stderr

    def test_atexit_guard_skips_closed_arenas(self):
        """close() discards the arena from the guard's live set."""
        pairs = _pairs(_instances(1))
        arena = InstanceArena(pairs)
        assert arena in shm._LIVE_ARENAS
        arena.close()
        assert arena not in shm._LIVE_ARENAS
        shm._close_live_arenas()  # no-op on the closed arena


# ----------------------------------------------------------------------------- #
# ship-at-most-once, asserted from inside pool workers
# ----------------------------------------------------------------------------- #
@pytest.mark.skipif(not _has_fork(), reason="needs the fork start method")
class TestShipOnce:
    @pytest.mark.parametrize("disable_shm", [False, True])
    def test_workers_rehydrate_each_digest_at_most_once(
        self, monkeypatch, disable_shm
    ):
        """24 tasks over 3 instances: every worker count stays at 1."""
        if disable_shm:
            monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        pairs = _pairs(_instances(3))
        with InstanceArena(pairs) as arena:
            assert arena.uses_shared_memory is not disable_shm
            refs = [arena.ref(*pair) for pair in pairs] * 8
            snapshots = parallel_map(
                _resolve_and_snapshot,
                refs,
                workers=2,
                batch_size=3,
                payload=arena.shipment(),
            )
        assert len(snapshots) == len(refs)
        worker_pids = {pid for pid, _, _ in snapshots}
        assert len(worker_pids) > 1  # the pool actually ran
        for _, _, counts in snapshots:
            assert counts  # instrumentation is live in the workers
            assert all(count == 1 for count in counts.values())

    def test_mapped_function_never_rides_in_task_tuples(self):
        """An unpicklable closure maps fine: it travels by initializer.

        Under the historical transport every chunk carried ``(fn, items)``
        and pickling the closure would raise; the initializer path inherits
        it through ``fork`` without ever serialising it.
        """
        offset = 17
        results = parallel_map(
            lambda x: x + offset, list(range(40)), workers=2, batch_size=4
        )
        assert results == [x + offset for x in range(40)]


# ----------------------------------------------------------------------------- #
# end-to-end identity across transports and backends
# ----------------------------------------------------------------------------- #
def _identity_bytes(batch) -> list[bytes]:
    return [
        pickle.dumps(result.identity()) for row in batch.results for result in row
    ]


class TestTransportIdentity:
    SOLVERS = ("H1", "H4", "bitmask-dp-latency-for-period")

    def test_pooled_equals_serial_under_every_transport(self):
        instances = _instances(5) * 2  # repeats exercise dedupe + memoisation
        serial = solve_many(instances, self.SOLVERS, period_bound=9.0)
        reference = _identity_bytes(serial)
        for transport in ("auto", "shm", "pickle"):
            pooled = solve_many(
                instances,
                self.SOLVERS,
                period_bound=9.0,
                workers=2,
                batch_size=2,
                transport=transport,
            )
            assert _identity_bytes(pooled) == reference, transport

    def test_identity_holds_with_and_without_compiled_engines(self, monkeypatch):
        """Serial == pooled == compiled-less, byte for byte."""
        from repro.core.kernels import compiled

        instances = _instances(4)
        reference = _identity_bytes(
            solve_many(instances, self.SOLVERS, period_bound=9.0)
        )
        with_engine = solve_many(
            instances,
            self.SOLVERS,
            period_bound=9.0,
            workers=2,
            backend="compiled",
            transport="shm",
        )
        assert _identity_bytes(with_engine) == reference
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "all")
        compiled.reset()
        try:
            assert compiled.engine_functions() is None
            without_engine = solve_many(
                instances,
                self.SOLVERS,
                period_bound=9.0,
                workers=2,
                backend="compiled",
                transport="shm",
            )
        finally:
            monkeypatch.delenv("REPRO_KERNELS_DISABLE")
            compiled.reset()
        assert _identity_bytes(without_engine) == reference


# ----------------------------------------------------------------------------- #
# pool sizing respects the affinity mask
# ----------------------------------------------------------------------------- #
class TestAvailableCpus:
    def test_respects_affinity_mask(self, monkeypatch):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3})
        assert available_cpus() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(multiprocessing, "cpu_count", lambda: 6)
        assert parallel.available_cpus() == 6

    def test_at_least_one(self, monkeypatch):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set())
        assert available_cpus() == 1
