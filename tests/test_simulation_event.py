"""Tests of the event-driven one-port simulator."""

from __future__ import annotations

import pytest

from repro.core.costs import evaluate
from repro.core.exceptions import SimulationError
from repro.core.mapping import IntervalMapping
from repro.heuristics import get_heuristic
from repro.simulation.event_driven import simulate_mapping
from repro.simulation.trace import EventKind
from tests.conftest import random_instance


class TestBasicExecution:
    def test_single_processor_mapping(self, small_app, small_platform, single_interval_mapping):
        trace = simulate_mapping(
            small_app, small_platform, single_interval_mapping, n_datasets=5
        )
        assert trace.n_datasets == 5
        assert len(trace.completion_times) == 5
        ev = evaluate(small_app, small_platform, single_interval_mapping)
        # period and latency both equal the single cycle time here
        assert trace.first_latency == pytest.approx(ev.latency)
        assert trace.measured_period() == pytest.approx(ev.period)

    def test_two_interval_mapping_counts_events(self, small_app, small_platform, two_interval_mapping):
        trace = simulate_mapping(
            small_app, small_platform, two_interval_mapping, n_datasets=3
        )
        computes = [e for e in trace.events if e.kind == EventKind.COMPUTE]
        # one compute event per interval per data set
        assert len(computes) == 2 * 3
        receives = [e for e in trace.events if e.kind == EventKind.RECEIVE]
        assert len(receives) == 2 * 3

    def test_invalid_arguments(self, small_app, small_platform, single_interval_mapping):
        with pytest.raises(SimulationError):
            simulate_mapping(small_app, small_platform, single_interval_mapping, 0)
        with pytest.raises(SimulationError):
            simulate_mapping(
                small_app, small_platform, single_interval_mapping, 3, input_period=-1.0
            )


class TestModelAgreement:
    def test_first_latency_equals_eq2(self):
        """The first data set never waits, so its response time is exactly eq. (2)."""
        for seed in range(4):
            app, platform = random_instance(10, 6, seed=seed)
            mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
            trace = simulate_mapping(app, platform, mapping, n_datasets=10)
            ev = evaluate(app, platform, mapping)
            assert trace.first_latency == pytest.approx(ev.latency, rel=1e-9)

    def test_steady_state_period_close_to_eq1(self):
        """The greedy one-port schedule converges to the analytical period."""
        for seed in range(4):
            app, platform = random_instance(10, 6, seed=seed)
            mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
            trace = simulate_mapping(app, platform, mapping, n_datasets=60)
            ev = evaluate(app, platform, mapping)
            measured = trace.measured_period()
            assert measured >= ev.period - 1e-9  # the model is a lower bound
            assert measured == pytest.approx(ev.period, rel=0.05)

    def test_throughput_never_beats_model(self):
        for seed in range(3):
            app, platform = random_instance(8, 4, seed=seed)
            mapping = IntervalMapping.single_processor(
                app.n_stages, platform.fastest_processor
            )
            trace = simulate_mapping(app, platform, mapping, n_datasets=30)
            ev = evaluate(app, platform, mapping)
            assert trace.measured_period() >= ev.period - 1e-9


class TestOnePortInvariants:
    def test_no_processor_overlap(self):
        for seed in range(3):
            app, platform = random_instance(12, 8, seed=seed)
            mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
            trace = simulate_mapping(app, platform, mapping, n_datasets=15)
            trace.check_no_overlap()
            trace.check_dataset_order()

    def test_completion_times_strictly_ordered(self):
        app, platform = random_instance(10, 6, seed=2)
        mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
        trace = simulate_mapping(app, platform, mapping, n_datasets=20)
        times = trace.completion_times
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_transfer_events_are_mirrored(self, small_app, small_platform, two_interval_mapping):
        trace = simulate_mapping(
            small_app, small_platform, two_interval_mapping, n_datasets=2
        )
        sends = [
            e for e in trace.events if e.kind == EventKind.SEND and e.peer is not None
        ]
        receives = [
            e for e in trace.events if e.kind == EventKind.RECEIVE and e.peer is not None
        ]
        assert len(sends) == len(receives)
        for send in sends:
            match = [
                r
                for r in receives
                if r.dataset == send.dataset
                and r.start == send.start
                and r.end == send.end
                and r.processor == send.peer
            ]
            assert len(match) == 1


class TestThrottledInput:
    def test_input_period_slows_the_pipeline(self):
        app, platform = random_instance(8, 5, seed=1)
        mapping = get_heuristic("H1").run(app, platform, period_bound=1e-9).mapping
        ev = evaluate(app, platform, mapping)
        slow_period = ev.period * 3
        trace = simulate_mapping(
            app, platform, mapping, n_datasets=20, input_period=slow_period
        )
        assert trace.measured_period() == pytest.approx(slow_period, rel=0.05)

    def test_injections_respect_the_input_period(self):
        app, platform = random_instance(6, 4, seed=0)
        mapping = IntervalMapping.single_processor(app.n_stages, 0)
        trace = simulate_mapping(
            app, platform, mapping, n_datasets=10, input_period=100.0
        )
        gaps = [
            b - a for a, b in zip(trace.injection_times, trace.injection_times[1:])
        ]
        assert all(g >= 100.0 - 1e-9 for g in gaps)

    def test_gantt_rendering(self, small_app, small_platform, two_interval_mapping):
        trace = simulate_mapping(
            small_app, small_platform, two_interval_mapping, n_datasets=2
        )
        art = trace.gantt(width=40)
        assert "P1" in art and "|" in art
