"""Unit tests for the homogeneous chains-to-chains solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chains.homogeneous import (
    PartitionResult,
    bisect_optimal,
    bottleneck_lower_bound,
    dp_optimal,
    greedy_partition,
    interval_sums,
    nicol_optimal,
)


def brute_force_bottleneck(values: np.ndarray, p: int) -> float:
    """Exhaustive optimum used as ground truth on small arrays."""
    from itertools import combinations

    n = len(values)
    best = float("inf")
    for m in range(1, min(p, n) + 1):
        for cuts in combinations(range(1, n), m - 1):
            bounds = [0, *cuts, n]
            sums = [values[bounds[i]: bounds[i + 1]].sum() for i in range(len(bounds) - 1)]
            best = min(best, max(sums))
    return float(best)


class TestDpOptimal:
    def test_simple_case(self):
        result = dp_optimal([1, 2, 3, 4, 5], 2)
        assert result.bottleneck == pytest.approx(9.0)  # [1,2,3] | [4,5]
        assert result.covers(5)

    def test_single_processor(self):
        result = dp_optimal([3, 1, 4], 1)
        assert result.bottleneck == pytest.approx(8.0)
        assert result.intervals == ((0, 2),)

    def test_more_processors_than_elements(self):
        result = dp_optimal([5, 1], 10)
        assert result.bottleneck == pytest.approx(5.0)
        assert result.covers(2)

    def test_empty_array(self):
        assert dp_optimal([], 3).bottleneck == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            dp_optimal([1], 0)

    def test_matches_bruteforce(self, rng):
        for _ in range(25):
            n = int(rng.integers(2, 9))
            p = int(rng.integers(1, 5))
            values = rng.integers(1, 20, size=n).astype(float)
            assert dp_optimal(values, p).bottleneck == pytest.approx(
                brute_force_bottleneck(values, p)
            )

    def test_partition_bottleneck_is_consistent(self, rng):
        values = rng.uniform(0.1, 10.0, size=30)
        result = dp_optimal(values, 4)
        sums = interval_sums(values, result.intervals)
        assert max(sums) == pytest.approx(result.bottleneck)
        assert result.covers(30)


class TestNicolOptimal:
    def test_matches_dp(self, rng):
        for _ in range(25):
            n = int(rng.integers(2, 40))
            p = int(rng.integers(1, 8))
            values = rng.uniform(0.1, 10.0, size=n)
            dp = dp_optimal(values, p)
            nicol = nicol_optimal(values, p)
            assert nicol.bottleneck == pytest.approx(dp.bottleneck, rel=1e-9)
            assert nicol.covers(n)

    def test_handles_integer_weights(self, rng):
        values = rng.integers(1, 50, size=60).astype(float)
        dp = dp_optimal(values, 6)
        nicol = nicol_optimal(values, 6)
        assert nicol.bottleneck == pytest.approx(dp.bottleneck)

    def test_empty_and_errors(self):
        assert nicol_optimal([], 2).bottleneck == 0.0
        with pytest.raises(ValueError):
            nicol_optimal([1.0], 0)


class TestBisectOptimal:
    def test_matches_dp_within_tolerance(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 60))
            p = int(rng.integers(1, 9))
            values = rng.uniform(0.1, 10.0, size=n)
            dp = dp_optimal(values, p)
            bis = bisect_optimal(values, p)
            assert bis.bottleneck <= dp.bottleneck * (1 + 1e-6) + 1e-9
            assert bis.bottleneck >= dp.bottleneck - 1e-9
            assert bis.covers(n)

    def test_trivial_cases(self):
        assert bisect_optimal([], 3).bottleneck == 0.0
        assert bisect_optimal([7.0], 1).bottleneck == pytest.approx(7.0)
        with pytest.raises(ValueError):
            bisect_optimal([1.0], 0)


class TestGreedyPartition:
    def test_produces_valid_partition(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 50))
            p = int(rng.integers(1, 10))
            values = rng.uniform(0.1, 10.0, size=n)
            result = greedy_partition(values, p)
            assert result.covers(n)
            assert result.n_intervals <= p
            sums = interval_sums(values, result.intervals)
            assert max(sums) == pytest.approx(result.bottleneck)

    def test_never_beats_the_optimum(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 25))
            p = int(rng.integers(1, 6))
            values = rng.uniform(0.1, 10.0, size=n)
            assert greedy_partition(values, p).bottleneck >= (
                dp_optimal(values, p).bottleneck - 1e-9
            )

    def test_uniform_load_is_balanced(self):
        result = greedy_partition([1.0] * 12, 4)
        assert result.n_intervals == 4
        assert result.bottleneck == pytest.approx(3.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            greedy_partition([1.0], -1)


class TestLowerBound:
    def test_bound_below_optimum(self, rng):
        for _ in range(15):
            n = int(rng.integers(1, 20))
            p = int(rng.integers(1, 6))
            values = rng.uniform(0.1, 10.0, size=n)
            assert bottleneck_lower_bound(values, p) <= dp_optimal(values, p).bottleneck + 1e-9

    def test_empty_and_degenerate(self):
        assert bottleneck_lower_bound([], 3) == 0.0
        assert bottleneck_lower_bound([1.0], 0) == float("inf")


class TestPartitionResult:
    def test_covers_detects_gaps(self):
        good = PartitionResult(1.0, ((0, 1), (2, 3)))
        assert good.covers(4)
        assert not good.covers(5)
        gap = PartitionResult(1.0, ((0, 1), (3, 4)))
        assert not gap.covers(5)
        assert PartitionResult(0.0, ()).covers(0)
